package dist

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/internal/engine"
	"repro/internal/tune"
)

// newFleet starts n in-process evaluator servers and returns a pool over
// them plus the evaluators (for fault hooks and counters).
func newFleet(t *testing.T, n int, opts func(i int) EvaluatorOptions) (*Pool, []*Evaluator) {
	t.Helper()
	var urls []string
	evs := make([]*Evaluator, n)
	for i := 0; i < n; i++ {
		o := EvaluatorOptions{Workers: 2, HeartbeatEvery: 20 * time.Millisecond}
		if opts != nil {
			o = opts(i)
		}
		evs[i] = NewEvaluator(o)
		srv := httptest.NewServer(evs[i].Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	pool := NewPool(urls, PoolOptions{
		HeartbeatTimeout: 500 * time.Millisecond,
		RetryBackoff:     5 * time.Millisecond,
	})
	return pool, evs
}

var dbmsModel = SysModel{System: "dbms", Workload: "tpch", Seed: 7}

// tuneWith runs one ituned session on dbms/tpch, optionally with a remote
// backend mixed into the fan-out. tunerName "ituned-hyperband" wraps the
// tuner in a Hyperband fidelity schedule.
func tuneWith(t *testing.T, remote engine.RemoteBackend, tunerName string, trials int) *tune.TuningResult {
	t.Helper()
	target, err := repro.NewTarget(dbmsModel.System, dbmsModel.Workload, dbmsModel.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fidelity := tunerName == "ituned-hyperband"
	if fidelity {
		tunerName = "ituned"
	}
	tn, err := repro.NewTuner(tunerName, repro.TunerOptions{Seed: dbmsModel.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if fidelity {
		mf, err := tune.NewMultiFidelity(tn.(tune.BatchTuner), tune.FidelitySpace{}, tune.StrategyHyperband, dbmsModel.Seed)
		if err != nil {
			t.Fatal(err)
		}
		tn = mf
	}
	eng := engine.New(engine.Options{Workers: 2, Remote: remote})
	res, err := eng.Tune(context.Background(), target, tn, tune.Budget{Trials: trials})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(t *testing.T, a, b *tune.TuningResult, label string) {
	t.Helper()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts differ: %d vs %d", label, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.String() != b.Trials[i].Config.String() {
			t.Fatalf("%s: trial %d configs differ", label, i+1)
		}
		if a.Trials[i].Result.Time != b.Trials[i].Result.Time {
			t.Fatalf("%s: trial %d times differ: %v vs %v",
				label, i+1, a.Trials[i].Result.Time, b.Trials[i].Result.Time)
		}
	}
	if a.Best.String() != b.Best.String() {
		t.Fatalf("%s: best configs differ", label)
	}
}

// TestFleetMatchesLocal is the subsystem's core guarantee end to end over
// real HTTP: a two-evaluator fleet produces the identical trial sequence a
// local-only run produces, because every evaluator rebuilds the same
// deterministic target and run indices are reserved coordinator-side.
func TestFleetMatchesLocal(t *testing.T) {
	local := tuneWith(t, nil, "ituned", 20)
	pool, evs := newFleet(t, 2, nil)
	remote := tuneWith(t, pool.Backend(dbmsModel), "ituned", 20)
	sameResult(t, local, remote, "local vs fleet")
	if evs[0].Info().Evaluations+evs[1].Info().Evaluations == 0 {
		t.Fatal("fleet was never used")
	}
}

// TestFleetFidelityMatchesLocal extends the guarantee to multi-fidelity
// rung batches (partial-fidelity assignments over the wire, straggler
// cancellation through aborted leases).
func TestFleetFidelityMatchesLocal(t *testing.T) {
	local := tuneWith(t, nil, "ituned-hyperband", 40)
	pool, _ := newFleet(t, 2, nil)
	sameResult(t, local, tuneWith(t, pool.Backend(dbmsModel), "ituned-hyperband", 40), "local vs fleet fidelity")
}

// TestLeaseRequeueOnDrop: an evaluator that crashes mid-evaluation (its
// lease connection closes without a completion) costs retries, not
// correctness — the trial requeues to the healthy evaluator and the final
// result is unchanged.
func TestLeaseRequeueOnDrop(t *testing.T) {
	local := tuneWith(t, nil, "ituned", 15)
	var drops atomic.Int64
	pool, _ := newFleet(t, 2, func(i int) EvaluatorOptions {
		o := EvaluatorOptions{Workers: 2, HeartbeatEvery: 20 * time.Millisecond}
		if i == 0 {
			o.Fault = func(a TrialAssignment) Fault {
				if a.RunIndex%3 == 0 {
					drops.Add(1)
					return Fault{Drop: true}
				}
				return Fault{}
			}
		}
		return o
	})
	sameResult(t, local, tuneWith(t, pool.Backend(dbmsModel), "ituned", 15), "local vs dropping fleet")
	if drops.Load() > 0 && pool.Retries() == 0 {
		t.Fatal("drops were injected but the pool recorded no requeues")
	}
}

// TestLeaseRequeueOnFrozenEvaluator: a frozen evaluator process (hangs and
// stops heartbeating) is detected by the lease watchdog; the trial
// requeues and the result is unchanged.
func TestLeaseRequeueOnFrozenEvaluator(t *testing.T) {
	local := tuneWith(t, nil, "ituned", 12)
	var freezes atomic.Int64
	var urls []string
	for i := 0; i < 2; i++ {
		o := EvaluatorOptions{Workers: 2, HeartbeatEvery: 10 * time.Millisecond}
		if i == 0 {
			o.Fault = func(a TrialAssignment) Fault {
				if a.RunIndex%4 == 1 {
					freezes.Add(1)
					return Fault{Hang: true, Mute: true}
				}
				return Fault{}
			}
		}
		srv := httptest.NewServer(NewEvaluator(o).Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	pool := NewPool(urls, PoolOptions{
		HeartbeatTimeout: 100 * time.Millisecond,
		RetryBackoff:     5 * time.Millisecond,
	})
	sameResult(t, local, tuneWith(t, pool.Backend(dbmsModel), "ituned", 12), "local vs frozen evaluator")
	if freezes.Load() > 0 && pool.Retries() == 0 {
		t.Fatal("freezes were injected but the pool recorded no requeues")
	}
}

// TestDeadEvaluatorIsRoutedAround: a fleet member that is down for the
// whole session (connection refused) never completes a lease; the router
// steers to the healthy evaluator and the session still matches local.
func TestDeadEvaluatorIsRoutedAround(t *testing.T) {
	local := tuneWith(t, nil, "ituned", 12)
	dead := httptest.NewServer(NewEvaluator(EvaluatorOptions{}).Handler())
	deadURL := dead.URL
	dead.Close()
	live := httptest.NewServer(NewEvaluator(EvaluatorOptions{Workers: 2, HeartbeatEvery: 20 * time.Millisecond}).Handler())
	t.Cleanup(live.Close)
	pool := NewPool([]string{deadURL, live.URL}, PoolOptions{
		HeartbeatTimeout: 500 * time.Millisecond,
		RetryBackoff:     5 * time.Millisecond,
	})
	sameResult(t, local, tuneWith(t, pool.Backend(dbmsModel), "ituned", 12), "local vs half-dead fleet")
}

// TestHeartbeatsKeepSlowLeasesAlive: an evaluation slower than the
// heartbeat timeout still completes on its first lease — heartbeats, not
// completion latency, are what keeps a lease alive.
func TestHeartbeatsKeepSlowLeasesAlive(t *testing.T) {
	pool, _ := newFleet(t, 1, func(int) EvaluatorOptions {
		return EvaluatorOptions{
			Workers:        2,
			HeartbeatEvery: 20 * time.Millisecond,
			Fault:          func(TrialAssignment) Fault { return Fault{Delay: 250 * time.Millisecond} },
		}
	})
	pool.opts.HeartbeatTimeout = 100 * time.Millisecond
	back := pool.Backend(dbmsModel)
	target, err := repro.NewTarget("dbms", "tpch", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Evaluate(context.Background(), 1, 0, target.Space().Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("res.Time = %v, want > 0", res.Time)
	}
	if pool.Retries() != 0 {
		t.Fatalf("slow-but-heartbeating lease burned %d retries, want 0", pool.Retries())
	}
	local := target.(tune.ConcurrentTarget).RunIndexed(1, target.Space().Default())
	if res.Time != local.Time {
		t.Fatalf("remote %v != local %v", res.Time, local.Time)
	}
}

// TestPermanentErrorSkipsRetries: an assignment no evaluator could ever
// execute (unknown system) fails immediately as a PermanentError without
// burning the retry budget.
func TestPermanentErrorSkipsRetries(t *testing.T) {
	pool, _ := newFleet(t, 2, nil)
	back := pool.Backend(SysModel{System: "no-such-system", Workload: "x", Seed: 1})
	target, err := repro.NewTarget("dbms", "tpch", 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = back.Evaluate(context.Background(), 0, 0, target.Space().Default())
	var perm *PermanentError
	if !errors.As(err, &perm) {
		t.Fatalf("err = %v, want a *PermanentError", err)
	}
	if pool.Retries() != 0 {
		t.Fatalf("a deterministic failure burned %d retries, want 0", pool.Retries())
	}
}

// TestExhaustedRetriesBecomeEvaluationLost: a fleet that is entirely gone
// yields an *engine.EvaluationLostError after the bounded retry budget —
// the distinguishable infrastructure-failure error, not a hang.
func TestExhaustedRetriesBecomeEvaluationLost(t *testing.T) {
	dead := httptest.NewServer(NewEvaluator(EvaluatorOptions{}).Handler())
	deadURL := dead.URL
	dead.Close()
	pool := NewPool([]string{deadURL}, PoolOptions{MaxRetries: 2, RetryBackoff: time.Millisecond})
	target, err := repro.NewTarget("dbms", "tpch", 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Backend(dbmsModel).Evaluate(context.Background(), 3, 0, target.Space().Default())
	if !errors.Is(err, engine.ErrEvaluationLost) {
		t.Fatalf("err = %v, want errors.Is engine.ErrEvaluationLost", err)
	}
	var lost *engine.EvaluationLostError
	if !errors.As(err, &lost) {
		t.Fatalf("err = %v, want *engine.EvaluationLostError", err)
	}
	if lost.RunIndex != 3 || lost.Attempts != 3 {
		t.Fatalf("lost = {RunIndex: %d, Attempts: %d}, want {3, 3}", lost.RunIndex, lost.Attempts)
	}
	if got := pool.Retries(); got != 2 {
		t.Fatalf("pool.Retries() = %d, want 2", got)
	}
}

// TestCancellationAbortsLease: cancelling the evaluation context (rung
// decided, session stopped) returns promptly with the context's error and
// consumes no retries — cancellation is not lease loss.
func TestCancellationAbortsLease(t *testing.T) {
	pool, _ := newFleet(t, 1, func(int) EvaluatorOptions {
		return EvaluatorOptions{
			Workers:        1,
			HeartbeatEvery: 10 * time.Millisecond,
			Fault:          func(TrialAssignment) Fault { return Fault{Hang: true} },
		}
	})
	target, err := repro.NewTarget("dbms", "tpch", 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = pool.Backend(dbmsModel).Evaluate(ctx, 0, 0, target.Space().Default())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to propagate", elapsed)
	}
	if pool.Retries() != 0 {
		t.Fatalf("cancellation burned %d retries, want 0", pool.Retries())
	}
}

// TestRegistrationAndHealth: Add performs the registration handshake
// (picking up each evaluator's advertised worker count), Slots sums them,
// and Health reports live fleet state.
func TestRegistrationAndHealth(t *testing.T) {
	pool, evs := newFleet(t, 2, func(i int) EvaluatorOptions {
		return EvaluatorOptions{Name: "ev", Workers: i + 1}
	})
	if got := pool.Slots(); got != 3 {
		t.Fatalf("Slots() = %d, want 3 (1+2)", got)
	}
	health := pool.Health(context.Background())
	if len(health) != 2 {
		t.Fatalf("Health reported %d evaluators, want 2", len(health))
	}
	for _, h := range health {
		if !h.Healthy {
			t.Fatalf("evaluator %s reported unhealthy: %+v", h.URL, h)
		}
		if h.Name != "ev" {
			t.Fatalf("registration did not pick up the evaluator name: %+v", h)
		}
	}
	for _, ev := range evs {
		if ev.Info().InFlight != 0 {
			t.Fatalf("idle evaluator reports in-flight work: %+v", ev.Info())
		}
	}
}
