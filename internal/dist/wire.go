// Package dist is the distributed trial-evaluation subsystem: an evaluator
// fleet behind an HTTP/JSON RPC boundary. An Evaluator serves trial
// evaluations (cmd/autotune-evaluator is the thin binary around it); a Pool
// is the coordinator-side client that leases trials to the fleet with
// heartbeat monitoring, requeues lost leases to other evaluators with
// bounded backoff, and plugs into the engine as an engine.RemoteBackend.
//
// Determinism is what makes the boundary exact rather than approximate:
// every sysmodel target is a pure function of (construction seed, run
// index, fidelity, config), so an evaluator that rebuilds the target from
// the assignment's sysmodel computes the bit-identical Result the
// coordinator would have computed locally. Run-index reservation stays on
// the coordinator, merge order stays proposal order, and the event stream
// is byte-identical whether trials ran locally, on 4 goroutines, or across
// N remote processes.
package dist

import (
	"encoding/json"
	"fmt"
	"math"

	repro "repro"
	"repro/internal/tune"
)

// SysModel names the target an assignment evaluates against: the same
// (system, workload, seed, options) tuple repro.NewTarget consumes, so any
// process with the registry can reconstruct the identical simulated system.
type SysModel struct {
	System   string              `json:"system"`
	Workload string              `json:"workload"`
	Seed     int64               `json:"seed"`
	Target   repro.TargetOptions `json:"target,omitzero"`
}

// Validate rejects sysmodels that no evaluator could build.
func (m SysModel) Validate() error {
	if m.System == "" || m.Workload == "" {
		return fmt.Errorf("dist: sysmodel requires system and workload (got %q, %q)", m.System, m.Workload)
	}
	return nil
}

// key renders the sysmodel canonically for target-cache lookup.
func (m SysModel) key() string {
	b, _ := json.Marshal(m)
	return string(b)
}

// TrialAssignment is one leased trial: evaluate Config (unit-cube
// coordinates, decoded against the rebuilt target's space) at RunIndex's
// noise stream and Fidelity (0 or ≥1 means the full workload).
type TrialAssignment struct {
	// ID names the lease; completions echo it so a coordinator can match
	// results to outstanding leases.
	ID       string    `json:"id"`
	RunIndex int64     `json:"run_index"`
	Fidelity float64   `json:"fidelity,omitempty"`
	Config   []float64 `json:"config"`
	SysModel SysModel  `json:"sysmodel"`
}

// Validate rejects assignments an evaluator could not execute faithfully.
// It is stable under a JSON round trip: the same assignment validates
// identically on both sides of the wire.
func (a TrialAssignment) Validate() error {
	if a.RunIndex < 0 {
		return fmt.Errorf("dist: run_index must be ≥ 0, got %d", a.RunIndex)
	}
	if math.IsNaN(a.Fidelity) || a.Fidelity < 0 || a.Fidelity > 1 {
		return fmt.Errorf("dist: fidelity must be within [0, 1], got %v", a.Fidelity)
	}
	for i, v := range a.Config {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dist: config coordinate %d is not finite", i)
		}
	}
	return a.SysModel.Validate()
}

// TrialCompletion reports one evaluated assignment back. Err carries an
// evaluator-side build or dispatch failure (unknown system, wrong space
// dimension) — deterministic failures that retrying on another evaluator
// would only reproduce. Infrastructure loss never appears here: a lost
// evaluator simply never completes, which the coordinator detects by
// heartbeat timeout.
type TrialCompletion struct {
	ID       string      `json:"id"`
	RunIndex int64       `json:"run_index"`
	Result   tune.Result `json:"result"`
	Err      string      `json:"error,omitempty"`
}

// Validate mirrors TrialAssignment.Validate for the return leg.
func (c TrialCompletion) Validate() error {
	if c.RunIndex < 0 {
		return fmt.Errorf("dist: run_index must be ≥ 0, got %d", c.RunIndex)
	}
	if math.IsNaN(c.Result.Time) || math.IsInf(c.Result.Time, 0) {
		return fmt.Errorf("dist: result time is not finite")
	}
	return nil
}

// frame is one line of the /evaluate ndjson response stream: heartbeats
// while the evaluation is queued or running, then exactly one completion.
// The stream doubles as the lease — a coordinator that stops seeing frames
// within its heartbeat timeout declares the lease lost and requeues.
type frame struct {
	Heartbeat  bool             `json:"heartbeat,omitempty"`
	Completion *TrialCompletion `json:"completion,omitempty"`
}

// registration is the body of POST /register: the coordinator announcing
// itself to an evaluator. The reply is the evaluator's Info.
type registration struct {
	Coordinator string `json:"coordinator"`
}

// Info describes one evaluator: its self-chosen name, how many concurrent
// evaluations it admits, and its lifetime counters.
type Info struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	Evaluations int64  `json:"evaluations"`
	InFlight    int64  `json:"in_flight"`
}
