package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"
	"repro/internal/tune"
)

// EvaluatorOptions configures an evaluator server.
type EvaluatorOptions struct {
	// Name identifies the evaluator in registrations and health reports
	// (default "evaluator").
	Name string
	// Workers bounds concurrent evaluations; excess assignments queue
	// server-side with their lease's heartbeats still flowing (default 1).
	Workers int
	// HeartbeatEvery is the interval between heartbeat frames on an open
	// lease (default 500ms). Coordinators time leases out after missing
	// several of these.
	HeartbeatEvery time.Duration
	// Fault, when non-nil, is consulted once per assignment — fault
	// injection for tests and chaos drills. Production evaluators leave
	// it nil.
	Fault func(TrialAssignment) Fault
}

// Fault describes one injected failure mode for an assignment.
type Fault struct {
	// Hang blocks the evaluation until the lease is cancelled: with
	// heartbeats still flowing this simulates an infinitely slow straggler;
	// combined with Mute it simulates a frozen evaluator process.
	Hang bool
	// Mute suppresses heartbeat frames so the coordinator's lease times out.
	Mute bool
	// Drop closes the lease connection without a completion — a crash
	// mid-evaluation.
	Drop bool
	// Delay sleeps before evaluating (cancelled with the lease).
	Delay time.Duration
}

// Evaluator serves trial evaluations over HTTP/JSON. It rebuilds targets
// from assignment sysmodels through the repro registry (caching them — a
// target is stateless under RunIndexed, so one instance serves every
// session that names the same sysmodel) and streams each evaluation's
// lease as heartbeat frames followed by one completion.
type Evaluator struct {
	opts EvaluatorOptions
	sem  chan struct{}

	evaluations atomic.Int64
	inflight    atomic.Int64

	mu          sync.Mutex
	coordinator string                 // last registered coordinator
	targets     map[string]*boundModel // sysmodel key → built target
}

// boundModel caches one reconstructed target with its concurrency faces.
type boundModel struct {
	space *tune.Space
	ct    tune.ConcurrentTarget
	cft   tune.ConcurrentFidelityTarget // nil: no fidelity path
}

// NewEvaluator returns an evaluator server.
func NewEvaluator(o EvaluatorOptions) *Evaluator {
	if o.Name == "" {
		o.Name = "evaluator"
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 500 * time.Millisecond
	}
	return &Evaluator{
		opts:    o,
		sem:     make(chan struct{}, o.Workers),
		targets: map[string]*boundModel{},
	}
}

// Info reports the evaluator's identity and lifetime counters.
func (e *Evaluator) Info() Info {
	return Info{
		Name:        e.opts.Name,
		Workers:     e.opts.Workers,
		Evaluations: e.evaluations.Load(),
		InFlight:    e.inflight.Load(),
	}
}

// Handler returns the evaluator's HTTP handler:
//
//	POST /evaluate  lease one TrialAssignment; ndjson heartbeat frames
//	                stream until the TrialCompletion frame closes the lease
//	POST /register  a coordinator announces itself; returns Info
//	GET  /healthz   liveness + Info
func (e *Evaluator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /evaluate", e.evaluate)
	mux.HandleFunc("POST /register", e.register)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "info": e.Info()})
	})
	return mux
}

func (e *Evaluator) register(w http.ResponseWriter, r *http.Request) {
	var reg registration
	if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "decoding registration: "+err.Error()), http.StatusBadRequest)
		return
	}
	e.mu.Lock()
	e.coordinator = reg.Coordinator
	e.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(e.Info())
}

// evaluate serves one lease: decode and validate the assignment, then
// stream heartbeats while the evaluation queues and runs, closing with the
// completion frame. The client aborting the request (rung cancelled,
// coordinator gone) cancels the evaluation through the request context.
func (e *Evaluator) evaluate(w http.ResponseWriter, r *http.Request) {
	var a TrialAssignment
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "decoding assignment: "+err.Error()), http.StatusBadRequest)
		return
	}
	if err := a.Validate(); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, `{"error":"response writer does not support streaming"}`, http.StatusInternalServerError)
		return
	}
	var fault Fault
	if e.opts.Fault != nil {
		fault = e.opts.Fault(a)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	enc := json.NewEncoder(w)
	done := make(chan TrialCompletion, 1)
	go func() { done <- e.run(r.Context(), a, fault) }()
	ticker := time.NewTicker(e.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case c := <-done:
			if fault.Drop {
				return // connection closes with no completion: a mid-lease crash
			}
			_ = enc.Encode(frame{Completion: &c})
			return
		case <-ticker.C:
			if fault.Mute {
				continue
			}
			if err := enc.Encode(frame{Heartbeat: true}); err != nil {
				return // client gone; the request context cancels the run
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// run executes one assignment: worker-slot admission, fault injection,
// target reconstruction, indexed evaluation.
func (e *Evaluator) run(ctx context.Context, a TrialAssignment, fault Fault) TrialCompletion {
	c := TrialCompletion{ID: a.ID, RunIndex: a.RunIndex}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	select {
	case e.sem <- struct{}{}:
		defer func() { <-e.sem }()
	case <-ctx.Done():
		c.Err = ctx.Err().Error()
		return c
	}
	if fault.Hang {
		<-ctx.Done()
		c.Err = ctx.Err().Error()
		return c
	}
	if fault.Delay > 0 {
		select {
		case <-time.After(fault.Delay):
		case <-ctx.Done():
			c.Err = ctx.Err().Error()
			return c
		}
	}
	bm, err := e.target(a.SysModel)
	if err != nil {
		c.Err = err.Error()
		return c
	}
	if len(a.Config) != bm.space.Dim() {
		c.Err = fmt.Sprintf("dist: config has %d coordinates, target space has %d", len(a.Config), bm.space.Dim())
		return c
	}
	cfg := bm.space.FromVector(a.Config)
	full := a.Fidelity <= 0 || a.Fidelity >= 1
	if !full && bm.cft == nil {
		c.Err = fmt.Sprintf("dist: target %q has no fidelity-aware evaluation path", a.SysModel.System+"/"+a.SysModel.Workload)
		return c
	}
	if full {
		c.Result = bm.ct.RunIndexed(a.RunIndex, cfg)
	} else {
		c.Result = bm.cft.RunIndexedFidelity(ctx, a.RunIndex, a.Fidelity, cfg)
		c.Result.Fidelity = a.Fidelity
	}
	e.evaluations.Add(1)
	return c
}

// target reconstructs (or returns the cached) target for a sysmodel.
// RunIndexed is pure in (seed, index, config) and safe for concurrent use,
// so one instance serves every lease naming the same sysmodel; the
// instance's own run counter is never consulted — indices always arrive
// reserved by the coordinator.
func (e *Evaluator) target(m SysModel) (*boundModel, error) {
	key := m.key()
	e.mu.Lock()
	defer e.mu.Unlock()
	if bm, ok := e.targets[key]; ok {
		return bm, nil
	}
	t, err := repro.NewTarget(m.System, m.Workload, m.Seed, m.Target)
	if err != nil {
		return nil, err
	}
	ct, ok := t.(tune.ConcurrentTarget)
	if !ok {
		return nil, fmt.Errorf("dist: target %q has no run-index-keyed evaluation path", t.Name())
	}
	bm := &boundModel{space: t.Space(), ct: ct}
	if cft, ok := t.(tune.ConcurrentFidelityTarget); ok {
		bm.cft = cft
	}
	e.targets[key] = bm
	return bm, nil
}
