package experiment

import (
	"math"
	"math/rand"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// This file holds the ask/tell (propose–observe) forms of the batchable
// experiment-driven tuners. Random and Grid are embarrassingly batchable;
// iTuned batches its Latin-hypercube initialization outright and its GP
// phase through a constant-liar-style penalized EI that keeps within-batch
// candidates apart. RRS, SARD and AdaptiveSampling stay sequential: their
// next experiment depends on the previous result through recursive search
// state that has no natural batch form.

// randomProposer streams uniform random configurations.
type randomProposer struct {
	space *tune.Space
	rng   *rand.Rand
}

// NewProposer implements tune.BatchTuner.
func (t *Random) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	return &randomProposer{space: target.Space(), rng: rand.New(rand.NewSource(t.Seed))}, nil
}

func (p *randomProposer) Propose(n int) []tune.Config {
	out := make([]tune.Config, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.space.Random(p.rng))
	}
	return out
}

func (p *randomProposer) Observe(tune.Trial) {}

// gridProposer walks a precomputed factorial design.
type gridProposer struct {
	pending []tune.Config
}

// NewProposer implements tune.BatchTuner.
func (t *Grid) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	k := t.TopK
	if k <= 0 {
		k = 3
	}
	if k > space.Dim() {
		k = space.Dim()
	}
	levels := int(math.Floor(math.Pow(float64(b.Trials), 1/float64(k))))
	if levels < 2 {
		levels = 2
	}
	ranked := space.ByImpact()[:k]
	idx := make([]int, k)
	for i, name := range ranked {
		idx[i] = space.IndexOf(name)
	}
	base := space.Default().Vector()
	var pending []tune.Config
	for _, p := range sample.Grid(levels, k) {
		x := append([]float64(nil), base...)
		for i, v := range p {
			x[idx[i]] = v
		}
		pending = append(pending, space.FromVector(x))
	}
	return &gridProposer{pending: pending}, nil
}

func (p *gridProposer) Propose(n int) []tune.Config { return tune.ProposeFixed(&p.pending, n) }

func (p *gridProposer) Observe(tune.Trial) {}

// itunedProposer is iTuned in ask/tell form: a Latin-hypercube design
// proposed as one batch, then GP/EI rounds of up to Batch candidates. The
// within-round candidates are separated by penalizing EI near already-
// chosen points (a liar-free stand-in for q-EI), so a round's proposals
// depend only on observed history — never on worker scheduling.
type itunedProposer struct {
	t     *ITuned
	space *tune.Space
	rng   *rand.Rand
	batch int

	pending   []tune.Config
	xs        [][]float64
	ys        []float64
	bestX     []float64
	incumbent float64
}

// NewProposer implements tune.BatchTuner.
func (t *ITuned) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	initN := t.InitLHS
	if initN <= 0 {
		initN = b.Trials / 3
		if initN > 10 {
			initN = 10
		}
		if initN < 4 {
			initN = 4
		}
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 4
	}
	p := &itunedProposer{t: t, space: space, rng: rng, batch: batch, incumbent: math.Inf(1)}
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

func (p *itunedProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	d := p.space.Dim()
	kernel := p.t.Kernel
	model := gp.New(kernel)
	if err := model.Fit(p.xs, p.ys, len(p.xs) <= 60); err != nil {
		// Degenerate surface: fall back to one random probe.
		return []tune.Config{p.space.Random(p.rng)}
	}
	k := p.batch
	if k > n {
		k = n
	}
	out := make([]tune.Config, 0, k)
	var chosen [][]float64
	for i := 0; i < k; i++ {
		next := opt.MultiStart(func(x []float64) float64 {
			v := -model.ExpectedImprovement(x, p.incumbent)
			// Shrink EI near points already picked this round so the batch
			// spreads out instead of piling onto one optimum.
			for _, c := range chosen {
				v *= 1 - math.Exp(-sqDist(x, c)/(0.15*0.15))
			}
			return v
		}, d, 6, 60, [][]float64{p.bestX}, p.rng)
		x := next.X
		if next.F >= 0 { // no positive EI left: explore
			x = randPoint(d, p.rng)
		}
		chosen = append(chosen, x)
		out = append(out, p.space.FromVector(x))
	}
	return out
}

func (p *itunedProposer) Observe(t tune.Trial) {
	x := t.Config.Vector()
	y := t.Result.Objective()
	p.xs = append(p.xs, x)
	p.ys = append(p.ys, y)
	if y < p.incumbent {
		p.incumbent, p.bestX = y, x
	}
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*Random)(nil)
	_ tune.BatchTuner = (*Grid)(nil)
	_ tune.BatchTuner = (*ITuned)(nil)
)
