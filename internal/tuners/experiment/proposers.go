package experiment

import (
	"math"
	"math/rand"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// This file holds the ask/tell (propose–observe) forms of the batchable
// experiment-driven tuners. Random and Grid are embarrassingly batchable;
// iTuned batches its Latin-hypercube initialization outright and its GP
// phase through a constant-liar-style penalized EI that keeps within-batch
// candidates apart. RRS, SARD and AdaptiveSampling stay sequential: their
// next experiment depends on the previous result through recursive search
// state that has no natural batch form.

// randomProposer streams uniform random configurations.
type randomProposer struct {
	space *tune.Space
	rng   *rand.Rand
}

// NewProposer implements tune.BatchTuner.
func (t *Random) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	return &randomProposer{space: target.Space(), rng: rand.New(rand.NewSource(t.Seed))}, nil
}

func (p *randomProposer) Propose(n int) []tune.Config {
	out := make([]tune.Config, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.space.Random(p.rng))
	}
	return out
}

func (p *randomProposer) Observe(tune.Trial) {}

// gridProposer walks a precomputed factorial design.
type gridProposer struct {
	pending []tune.Config
}

// NewProposer implements tune.BatchTuner.
func (t *Grid) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	k := t.TopK
	if k <= 0 {
		k = 3
	}
	if k > space.Dim() {
		k = space.Dim()
	}
	levels := int(math.Floor(math.Pow(float64(b.Trials), 1/float64(k))))
	if levels < 2 {
		levels = 2
	}
	ranked := space.ByImpact()[:k]
	idx := make([]int, k)
	for i, name := range ranked {
		idx[i] = space.IndexOf(name)
	}
	base := space.Default().Vector()
	var pending []tune.Config
	for _, p := range sample.Grid(levels, k) {
		x := append([]float64(nil), base...)
		for i, v := range p {
			x[idx[i]] = v
		}
		pending = append(pending, space.FromVector(x))
	}
	return &gridProposer{pending: pending}, nil
}

func (p *gridProposer) Propose(n int) []tune.Config { return tune.ProposeFixed(&p.pending, n) }

func (p *gridProposer) Observe(tune.Trial) {}

// itunedProposer is iTuned in ask/tell form: a Latin-hypercube design
// proposed as one batch, then GP/EI rounds of up to Batch candidates. The
// within-round candidates are separated by penalizing EI near already-
// chosen points (a liar-free stand-in for q-EI), so a round's proposals
// depend only on observed history — never on worker scheduling.
//
// Each GP round screens a pool of uniform candidates with one batched
// ScoreCandidates call, then polishes the best screened start with a local
// simplex search — far fewer acquisition evaluations than cold multi-start,
// and the ones that remain are allocation-free. The model persists across
// rounds: with ReoptimizeEvery > 1, in-between rounds absorb new
// observations through gp.Append instead of refitting.
type itunedProposer struct {
	t     *ITuned
	space *tune.Space
	rng   *rand.Rand
	batch int
	sel   *tune.SurrogateSelector

	pending   []tune.Config
	xs        [][]float64
	ys        []float64
	bestX     []float64
	incumbent float64

	model    gp.Surrogate
	absorbed int // observations the model has conditioned on
	round    int // GP rounds run
	scores   []float64
}

// screenPool is how many uniform candidates each GP round scores in the
// batched screening pass before polishing.
const screenPool = 48

// batchPenalty shrinks an acquisition score near points already chosen this
// round so a batch spreads out instead of piling onto one optimum.
func batchPenalty(x []float64, chosen [][]float64) float64 {
	pen := 1.0
	for _, c := range chosen {
		pen *= 1 - math.Exp(-sqDist(x, c)/(0.15*0.15))
	}
	return pen
}

// ensureModel brings the surrogate in sync with the observed history: a full
// hyperparameter-searched refit on re-optimization rounds, an incremental
// append otherwise. Reports false when fitting failed (degenerate surface).
// The surrogate tier is resolved per re-optimization round from the observed
// history size — sessions grow exact → sparse → RFF as trials accumulate —
// while below the sparse threshold the selector hands back exactly the
// historical gp.New path, keeping existing event streams byte-identical.
func (p *itunedProposer) ensureModel() bool {
	every := p.t.ReoptimizeEvery
	if every < 1 {
		every = 1
	}
	reopt := p.model == nil || p.round%every == 0
	p.round++
	if reopt {
		tier := p.sel.TierFor(len(p.xs), p.space.Dim())
		m := p.sel.New(p.t.Kernel, tier, p.t.Seed)
		// The sparse and RFF tiers select hyperparameters on an inducing
		// subset — O(m³) — so they can afford the search at every size; the
		// exact tier keeps its historical n ≤ 60 optimize rule bit-for-bit.
		optimize := len(p.xs) <= 60 || tier != tune.SurrogateExact
		if err := m.Fit(p.xs, p.ys, optimize); err != nil {
			p.model = nil
			return false
		}
		p.model, p.absorbed = m, len(p.xs)
		return true
	}
	for ; p.absorbed < len(p.xs); p.absorbed++ {
		if err := p.model.Append(p.xs[p.absorbed], p.ys[p.absorbed]); err != nil {
			p.model = nil
			return false
		}
	}
	return true
}

// NewProposer implements tune.BatchTuner.
func (t *ITuned) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	initN := t.InitLHS
	if initN <= 0 {
		initN = b.Trials / 3
		if initN > 10 {
			initN = 10
		}
		if initN < 4 {
			initN = 4
		}
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 4
	}
	p := &itunedProposer{
		t: t, space: space, rng: rng, batch: batch, incumbent: math.Inf(1),
		sel: tune.NewSurrogateSelector(t.Surrogate),
	}
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

func (p *itunedProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	d := p.space.Dim()
	if !p.ensureModel() {
		// Degenerate surface: fall back to one random probe.
		return []tune.Config{p.space.Random(p.rng)}
	}
	model := p.model
	k := p.batch
	if k > n {
		k = n
	}
	// Screen: one batched scoring pass over the incumbent plus a uniform
	// candidate pool.
	pool := make([][]float64, 0, screenPool+1)
	pool = append(pool, p.bestX)
	for i := 0; i < screenPool; i++ {
		pool = append(pool, randPoint(d, p.rng))
	}
	p.scores = model.ScoreCandidates(pool, p.incumbent, p.scores)
	out := make([]tune.Config, 0, k)
	var chosen [][]float64
	for i := 0; i < k; i++ {
		// Pick the best screened start under the spread penalty, then
		// polish it with a local simplex search on penalized EI.
		bestAt, bestScore := 0, math.Inf(-1)
		for c, cand := range pool {
			if s := p.scores[c] * batchPenalty(cand, chosen); s > bestScore {
				bestAt, bestScore = c, s
			}
		}
		next := opt.NelderMead(func(x []float64) float64 {
			return -model.ExpectedImprovement(x, p.incumbent) * batchPenalty(x, chosen)
		}, pool[bestAt], 0.15, 60)
		x := next.X
		if next.F >= 0 { // no positive EI left: explore
			x = randPoint(d, p.rng)
		}
		chosen = append(chosen, x)
		out = append(out, p.space.FromVector(x))
	}
	return out
}

func (p *itunedProposer) Observe(t tune.Trial) {
	x := t.Config.Vector()
	y := t.Result.Objective()
	p.xs = append(p.xs, x)
	p.ys = append(p.ys, y)
	if y < p.incumbent {
		p.incumbent, p.bestX = y, x
	}
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*Random)(nil)
	_ tune.BatchTuner = (*Grid)(nil)
	_ tune.BatchTuner = (*ITuned)(nil)
)
