package experiment

import (
	"context"
	"testing"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/tune"
	"repro/internal/workload"
)

func testTarget(seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), workload.TPCHLike(2), seed)
}

func inUnitCube(t *testing.T, cfg tune.Config) {
	t.Helper()
	for _, v := range cfg.Vector() {
		if v < 0 || v > 1 {
			t.Fatalf("coordinate %v outside the unit cube", v)
		}
	}
}

func TestRandomProposerStreamsAndIsDeterministic(t *testing.T) {
	target := testTarget(1)
	b := tune.Budget{Trials: 10}
	mk := func() tune.Proposer {
		p, err := (&Random{Seed: 5}).NewProposer(target, b)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, c := mk(), mk()
	got := a.Propose(6)
	if len(got) != 6 {
		t.Fatalf("Propose(6) returned %d configs", len(got))
	}
	other := c.Propose(6)
	for i := range got {
		inUnitCube(t, got[i])
		if got[i].String() != other[i].String() {
			t.Fatalf("same seed proposed different configs at %d", i)
		}
	}
	// Observation must not perturb the stream.
	a.Observe(tune.Trial{N: 1, Config: got[0], Result: tune.Result{Time: 1}})
	if a.Propose(1)[0].String() != c.Propose(1)[0].String() {
		t.Fatal("Observe changed the proposal stream")
	}
}

func TestGridProposerCoversFactorialDesign(t *testing.T) {
	target := testTarget(2)
	space := target.Space()
	b := tune.Budget{Trials: 30} // 3 levels over 3 knobs (floor(30^(1/3)) = 3)
	p, err := (&Grid{TopK: 3}).NewProposer(target, b)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := p.Propose(100)
	if len(cfgs) != 27 {
		t.Fatalf("grid proposed %d points, want 27", len(cfgs))
	}
	// Non-swept parameters stay at their defaults.
	swept := map[string]bool{}
	for _, name := range space.ByImpact()[:3] {
		swept[name] = true
	}
	def := space.Default()
	seen := map[string]bool{}
	for _, cfg := range cfgs {
		seen[cfg.String()] = true
		for _, prm := range space.Params() {
			if !swept[prm.Name] && cfg.Native(prm.Name) != def.Native(prm.Name) {
				t.Fatalf("parameter %s moved off its default in a grid point", prm.Name)
			}
		}
	}
	if len(seen) != 27 {
		t.Fatalf("grid proposed %d distinct points, want 27", len(seen))
	}
	if more := p.Propose(10); len(more) != 0 {
		t.Fatalf("exhausted grid proposed %d more points", len(more))
	}
}

func TestITunedProposerPhases(t *testing.T) {
	target := testTarget(3)
	b := tune.Budget{Trials: 30}
	it := NewITuned(9)
	p, err := it.NewProposer(target, b)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: the Latin-hypercube design arrives as one batch.
	init := p.Propose(30)
	if len(init) != 10 { // min(10, 30/3)
		t.Fatalf("LHS init proposed %d points, want 10", len(init))
	}
	for i, cfg := range init {
		inUnitCube(t, cfg)
		p.Observe(tune.Trial{N: i + 1, Config: cfg, Result: tune.Result{Time: float64(100 + i)}})
	}
	// Phase 2: GP rounds propose at most Batch candidates, all distinct.
	round := p.Propose(20)
	if len(round) == 0 || len(round) > 4 {
		t.Fatalf("GP round proposed %d candidates, want 1..4", len(round))
	}
	seen := map[string]bool{}
	for _, cfg := range round {
		inUnitCube(t, cfg)
		seen[cfg.String()] = true
	}
	if len(seen) != len(round) {
		t.Fatalf("GP round proposed duplicate candidates: %v", round)
	}
	// A budget headroom of 1 caps the batch.
	for i, cfg := range round {
		p.Observe(tune.Trial{N: 11 + i, Config: cfg, Result: tune.Result{Time: 90}})
	}
	if got := p.Propose(1); len(got) != 1 {
		t.Fatalf("Propose(1) returned %d candidates", len(got))
	}
}

// TestITunedReoptimizeEvery: with ReoptimizeEvery > 1 the GP conditions
// incrementally between hyperparameter searches. The stream must stay
// deterministic, respect the budget, and still tune.
func TestITunedReoptimizeEvery(t *testing.T) {
	b := tune.Budget{Trials: 24}
	run := func() *tune.TuningResult {
		it := NewITuned(6)
		it.ReoptimizeEvery = 3
		r, err := it.Tune(context.Background(), testTarget(6), b)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, c := run(), run()
	if len(a.Trials) == 0 || len(a.Trials) > 24 {
		t.Fatalf("ran %d trials under budget 24", len(a.Trials))
	}
	if len(a.Trials) != len(c.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(c.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.String() != c.Trials[i].Config.String() {
			t.Fatalf("trial %d differs between identical runs", i+1)
		}
	}
	def := testTarget(6).Run(testTarget(6).Space().Default())
	if a.BestResult.Time >= def.Time {
		t.Errorf("ReoptimizeEvery=3 run did not improve on default: %v vs %v",
			a.BestResult.Time, def.Time)
	}
}

func TestITunedProposerDeterminism(t *testing.T) {
	b := tune.Budget{Trials: 16}
	run := func() []string {
		r, err := NewITuned(4).Tune(context.Background(), testTarget(4), b)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, tr := range r.Trials {
			out = append(out, tr.Config.String())
		}
		return out
	}
	a, c := run(), run()
	if len(a) != len(c) {
		t.Fatalf("trial counts differ: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("trial %d differs between identical runs", i+1)
		}
	}
}
