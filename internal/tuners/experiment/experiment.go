// Package experiment implements the survey's fourth category: tuners that
// learn from actual runs of the system, guided by experimental design and
// search algorithms.
//
//   - SARD (Debnath et al., ICDE'08 workshop): Plackett–Burman two-level
//     screening with foldover ranks parameters by main-effect magnitude,
//     then the budget concentrates on the top-ranked few.
//   - AdaptiveSampling (Babu et al., HotOS 2009): bootstrap with random
//     experiments, then balance exploitation (sample near the incumbent)
//     against exploration (sample far from everything seen).
//   - ITuned (Duan, Thummala & Babu, PVLDB 2009): Latin-hypercube
//     initialization, a Gaussian-process response surface, and Expected
//     Improvement to plan each next experiment.
//   - Baselines: pure random search, full-factorial grid over the top-impact
//     parameters, and recursive random search.
//
// Experiment-driven tuning finds genuinely good configurations on the real
// system — its Table-1 strength — at the price of many real runs, which the
// budget accounting here makes visible.
package experiment

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// Random evaluates uniformly random configurations — the floor every other
// approach must beat.
type Random struct {
	Seed int64
}

// Name implements tune.Tuner.
func (t *Random) Name() string { return "experiment/random" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *Random) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

// Grid sweeps a full factorial grid over the TopK highest-impact parameters
// (others stay at defaults), with as many levels as the budget affords.
type Grid struct {
	TopK int
}

// Name implements tune.Tuner.
func (t *Grid) Name() string { return "experiment/grid" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *Grid) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

// RRS wraps recursive random search over real runs.
type RRS struct {
	Seed int64
}

// Name implements tune.Tuner.
func (t *RRS) Name() string { return "experiment/rrs" }

// Tune implements tune.Tuner.
func (t *RRS) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	rng := rand.New(rand.NewSource(t.Seed))
	space := target.Space()
	s := tune.NewSession(ctx, target, b)
	var runErr error
	opt.RecursiveRandomSearch(func(x []float64) float64 {
		if s.Exhausted() || runErr != nil {
			return math.Inf(1)
		}
		res, err := s.Run(space.FromVector(x))
		if err != nil {
			if err != tune.ErrBudgetExhausted {
				runErr = err
			}
			return math.Inf(1)
		}
		return res.Objective()
	}, space.Dim(), b.Trials, rng)
	if runErr != nil {
		return nil, runErr
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

// SARD ranks parameters with a Plackett–Burman screening design (plus
// foldover) and then tunes only the influential ones with the remaining
// budget.
type SARD struct {
	Seed int64
	// TopK parameters to tune after screening (default 4).
	TopK int
	// Lo and Hi are the unit-cube positions of the two levels (default
	// 0.15/0.85).
	Lo, Hi float64

	// LastRanking records the most recent screening ranking (parameter
	// names, most important first) for inspection by the harness.
	LastRanking []string
	// LastEffects records |main effect| per parameter, aligned with the
	// space's parameter order.
	LastEffects []float64
}

// NewSARD returns a SARD tuner with defaults.
func NewSARD(seed int64) *SARD { return &SARD{Seed: seed, TopK: 4, Lo: 0.15, Hi: 0.85} }

// Name implements tune.Tuner.
func (t *SARD) Name() string { return "experiment/sard" }

// Screen runs only the screening phase and returns the parameter ranking.
func (t *SARD) Screen(ctx context.Context, target tune.Target, b tune.Budget) ([]string, *tune.Session, error) {
	space := target.Space()
	d := space.Dim()
	design := sample.Foldover(sample.PlackettBurman(d))
	s := tune.NewSession(ctx, target, b)
	var rows [][]int
	var ys []float64
	for _, row := range design {
		if s.Exhausted() {
			break
		}
		point := sample.LevelsToPoint(row, t.Lo, t.Hi)
		res, err := s.Run(space.FromVector(point))
		if err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, nil, err
		}
		rows = append(rows, row)
		ys = append(ys, res.Objective())
	}
	// Main effect of parameter j: mean(y | +) − mean(y | −).
	effects := make([]float64, d)
	for j := 0; j < d; j++ {
		var hi, lo, nHi, nLo float64
		for i, row := range rows {
			if row[j] > 0 {
				hi += ys[i]
				nHi++
			} else {
				lo += ys[i]
				nLo++
			}
		}
		if nHi > 0 && nLo > 0 {
			effects[j] = math.Abs(hi/nHi - lo/nLo)
		}
	}
	t.LastEffects = effects
	names := space.Names()
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return effects[order[a]] > effects[order[b]] })
	ranking := make([]string, d)
	for i, j := range order {
		ranking[i] = names[j]
	}
	t.LastRanking = ranking
	return ranking, s, nil
}

// Tune implements tune.Tuner: screen, then recursive random search over the
// top-ranked parameters only.
func (t *SARD) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	ranking, s, err := t.Screen(ctx, target, b)
	if err != nil {
		return nil, err
	}
	space := target.Space()
	topK := t.TopK
	if topK <= 0 {
		topK = 4
	}
	if topK > len(ranking) {
		topK = len(ranking)
	}
	idx := make([]int, topK)
	for i, name := range ranking[:topK] {
		idx[i] = space.IndexOf(name)
	}
	bestCfg, _ := s.Best()
	base := bestCfg.Vector()
	rng := rand.New(rand.NewSource(t.Seed + 1))
	var runErr error
	opt.RecursiveRandomSearch(func(sub []float64) float64 {
		if s.Exhausted() || runErr != nil {
			return math.Inf(1)
		}
		x := append([]float64(nil), base...)
		for i, v := range sub {
			x[idx[i]] = v
		}
		res, err := s.Run(space.FromVector(x))
		if err != nil {
			if err != tune.ErrBudgetExhausted {
				runErr = err
			}
			return math.Inf(1)
		}
		return res.Objective()
	}, topK, s.Remaining(), rng)
	if runErr != nil {
		return nil, runErr
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

// AdaptiveSampling is the HotOS'09 experiment planner: bootstrap randomly,
// then alternate between exploiting near the incumbent and exploring the
// least-sampled region.
type AdaptiveSampling struct {
	Seed int64
	// Bootstrap is the number of initial random runs (default max(5, d)).
	Bootstrap int
	// ExploreFrac is the fraction of post-bootstrap trials spent exploring
	// (default 0.3).
	ExploreFrac float64
}

// NewAdaptiveSampling returns an adaptive-sampling tuner with defaults.
func NewAdaptiveSampling(seed int64) *AdaptiveSampling {
	return &AdaptiveSampling{Seed: seed, ExploreFrac: 0.3}
}

// Name implements tune.Tuner.
func (t *AdaptiveSampling) Name() string { return "experiment/adaptive-sampling" }

// Tune implements tune.Tuner.
func (t *AdaptiveSampling) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	s := tune.NewSession(ctx, target, b)
	boot := t.Bootstrap
	if boot <= 0 {
		boot = d
		if boot < 5 {
			boot = 5
		}
	}
	var seen [][]float64
	for i := 0; i < boot && !s.Exhausted(); i++ {
		cfg := space.Random(rng)
		if _, err := s.Run(cfg); err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		seen = append(seen, cfg.Vector())
	}
	explore := t.ExploreFrac
	if explore <= 0 || explore >= 1 {
		explore = 0.3
	}
	radius := 0.2
	for !s.Exhausted() {
		var next []float64
		if rng.Float64() < explore {
			// Exploration: among candidates, pick the one farthest from
			// every seen sample (maximin).
			bestD := -1.0
			for c := 0; c < 32; c++ {
				cand := randPoint(d, rng)
				dist := math.Inf(1)
				for _, p := range seen {
					if dd := sqDist(cand, p); dd < dist {
						dist = dd
					}
				}
				if dist > bestD {
					bestD, next = dist, cand
				}
			}
		} else {
			// Exploitation: perturb the incumbent within a shrinking box.
			bestCfg, _ := s.Best()
			bv := bestCfg.Vector()
			next = make([]float64, d)
			for j := range next {
				next[j] = clamp01(bv[j] + (rng.Float64()*2-1)*radius)
			}
			radius = math.Max(0.03, radius*0.97)
		}
		if _, err := s.Run(space.FromVector(next)); err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		seen = append(seen, next)
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

// ITuned is the PVLDB'09 GP/EI experiment planner.
type ITuned struct {
	Seed int64
	// InitLHS is the Latin-hypercube initialization size (default
	// min(10, budget/3), at least 4).
	InitLHS int
	// Kernel selects the GP kernel (default Matérn 5/2).
	Kernel gp.KernelKind
	// Batch is how many candidates each GP round proposes (default 4);
	// the concurrent engine evaluates them in parallel.
	Batch int
	// ReoptimizeEvery re-selects GP hyperparameters every k-th GP round.
	// Between re-optimizations the model absorbs new observations
	// incrementally — an O(n²) bordered-Cholesky append with frozen
	// hyperparameters instead of an O(n³) grid-searched refit. 0 or 1
	// (the default) refits with hyperparameter search every round; >1
	// trades hyperparameter freshness for speed on long sessions. Either
	// way the stream is deterministic for a fixed seed and identical at
	// any worker count, but streams recorded under different settings
	// are not comparable to each other.
	ReoptimizeEvery int
	// Surrogate selects the GP surrogate tier and its switch-over
	// thresholds (nil = auto with defaults). Below the sparse threshold the
	// exact tier runs the historical code path, so event streams recorded
	// without a surrogate config stay byte-identical.
	Surrogate *tune.SurrogateConfig
}

// NewITuned returns an iTuned tuner with defaults.
func NewITuned(seed int64) *ITuned { return &ITuned{Seed: seed, Kernel: gp.Matern52} }

// Name implements tune.Tuner.
func (t *ITuned) Name() string { return "experiment/ituned" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *ITuned) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

func randPoint(d int, rng *rand.Rand) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Interface conformance checks.
var (
	_ tune.Tuner = (*Random)(nil)
	_ tune.Tuner = (*Grid)(nil)
	_ tune.Tuner = (*RRS)(nil)
	_ tune.Tuner = (*SARD)(nil)
	_ tune.Tuner = (*AdaptiveSampling)(nil)
	_ tune.Tuner = (*ITuned)(nil)
)
