// Package costmodel implements the survey's second category: white-box
// analytical performance models built from understanding of system
// internals, evaluated without running the system.
//
//   - STMM (Storm et al., VLDB 2006): cost–benefit balancing of memory
//     consumers for the DBMS — shift memory toward the consumer with the
//     highest marginal benefit until benefits equalize.
//   - Starfish-lite (Herodotou & Babu, PVLDB 2011): an analytical what-if
//     model of MapReduce phase times driven by a job profile, searched with
//     recursive random search to recommend a configuration.
//   - Ernest (Venkataraman et al., NSDI 2016): a scale-out model for Spark
//     fit by non-negative least squares on a few cheap runs, predicting the
//     best executor count.
//
// Cost models are extremely cheap — zero or near-zero real runs — but
// inherit every simplifying assumption they are built on; the Table-1
// experiment shows where those assumptions bite (heterogeneity, contention).
package costmodel

import (
	"context"
	"math"

	"repro/internal/tune"
)

// STMM balances DBMS memory consumers analytically. The model: buffer-pool
// benefit follows a concave hit-ratio curve against the workload's data
// size; work_mem benefit is a spill-avoidance step against the workload's
// sort/hash sizes; both are priced in saved I/O seconds per MB. Memory moves
// from the consumer with the lower marginal benefit to the higher until
// marginal benefits equalize — DB2's self-tuning memory manager in
// miniature. It needs specs and workload features but zero runs; with
// budget, one verification run is spent.
type STMM struct {
	// Step is the reallocation granularity in MB (default 64).
	Step float64
	// Iterations bounds the balancing loop (default 200).
	Iterations int
}

// NewSTMM returns an STMM tuner with defaults.
func NewSTMM() *STMM { return &STMM{Step: 64, Iterations: 200} }

// Name implements tune.Tuner.
func (t *STMM) Name() string { return "costmodel/stmm" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *STMM) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

// recommend performs the analytical memory balancing.
func (t *STMM) recommend(target tune.Target) tune.Config {
	space := target.Space()
	specs := map[string]float64{}
	if sp, ok := target.(tune.SpecProvider); ok {
		specs = sp.Specs()
	}
	features := map[string]float64{}
	if d, ok := target.(tune.Describer); ok {
		features = d.WorkloadFeatures()
	}
	ram := specs["ram_mb"]
	if ram == 0 {
		ram = 4096
	}
	dataMB := features["data_gb"] * 1024
	if dataMB == 0 {
		dataMB = ram * 4
	}
	clients := math.Max(features["clients"], 1)
	sortShare := features["sort_frac"] + features["join_frac"] + 0.5*features["scan_frac"]

	// Memory pool to distribute: 80% of RAM minus fixed overheads.
	pool := 0.8*ram - 256
	buffer := pool * 0.5
	workTotal := pool * 0.5 // total across concurrent consumers
	conc := math.Min(clients, specs["cores"])
	if conc < 1 {
		conc = 1
	}

	// Marginal benefit of one more MB of buffer pool: derivative of the
	// concave hit curve times the read volume it saves.
	bufBenefit := func(mb float64) float64 {
		frac := math.Min(1, mb/dataMB)
		// d/dmb of frac^0.7 ≈ 0.7·frac^{-0.3}/dataMB; scaled by read volume.
		return 0.7 * math.Pow(frac+1e-9, -0.3) / dataMB * (1 - features["update_frac"])
	}
	// Marginal benefit of one more MB of work memory: spill avoidance,
	// strongest while typical operator inputs exceed per-consumer share.
	typicalOpMB := math.Max(dataMB*0.1, 16)
	workBenefit := func(total float64) float64 {
		per := total / conc
		if per >= typicalOpMB {
			return 0.05 / dataMB * sortShare // residual benefit
		}
		return 2.0 / typicalOpMB * sortShare
	}

	iters := t.Iterations
	if iters <= 0 {
		iters = 200
	}
	step := t.Step
	if step <= 0 {
		step = 64
	}
	for i := 0; i < iters; i++ {
		bb, wb := bufBenefit(buffer), workBenefit(workTotal)
		switch {
		case bb > wb*1.05 && workTotal > step:
			buffer += step
			workTotal -= step
		case wb > bb*1.05 && buffer > step:
			buffer -= step
			workTotal += step
		default:
			i = iters // balanced
		}
	}

	rec := space.Default()
	if _, ok := space.Param("buffer_pool_mb"); ok {
		rec = rec.WithNative("buffer_pool_mb", buffer)
	}
	if _, ok := space.Param("work_mem_mb"); ok {
		rec = rec.WithNative("work_mem_mb", math.Max(workTotal/conc/2, 1))
	}
	if _, ok := space.Param("wal_buffer_mb"); ok && features["update_frac"] > 0.05 {
		rec = rec.WithNative("wal_buffer_mb", 32)
	}
	return rec
}

var _ tune.Tuner = (*STMM)(nil)
