package costmodel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mathx/linalg"
	"repro/internal/mathx/opt"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
)

// Ask/tell forms of the cost-model tuners. STMM and Starfish compute their
// recommendation entirely offline at proposer construction and spend at
// most one (Starfish: plus one repaired) verification run, expressed
// through tune.RecommendProposer. Ernest proposes its whole training design
// as one batch — the engine runs the scale-out samples in parallel — then
// fits the NNLS model and proposes the predicted-best executor count.

// NewProposer implements tune.BatchTuner.
func (t *STMM) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	return tune.NewRecommendProposer(t.recommend(target), nil), nil
}

// NewProposer implements tune.BatchTuner.
func (t *Starfish) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	h, ok := target.(*mapreduce.Hadoop)
	if !ok {
		return nil, fmt.Errorf("costmodel/starfish: target %q is not a Hadoop deployment", target.Name())
	}
	job, cl := h.Job(), h.Cluster()
	space := target.Space()
	budget := t.SearchBudget
	if budget <= 0 {
		budget = 3000
	}
	rng := rand.New(rand.NewSource(t.Seed + 17))
	best := opt.RecursiveRandomSearch(func(x []float64) float64 {
		return Predict(job, cl, space.FromVector(x))
	}, space.Dim(), budget, rng)
	rec := space.FromVector(best.X)
	// The model can recommend an infeasible point: repair by halving memory
	// demands and retry once.
	repair := func(failed tune.Config) tune.Config {
		return failed.WithNative(mapreduce.IOSortMB, failed.Float(mapreduce.IOSortMB)/2).
			WithNative(mapreduce.MapSlots, float64(failed.Int(mapreduce.MapSlots))/2)
	}
	return tune.NewRecommendProposer(rec, repair), nil
}

// ernestProposer trains the scale-out model from one batched design.
type ernestProposer struct {
	base    tune.Config
	maxExec float64

	pending []tune.Config
	// trainCounts holds the executor count of each outstanding training
	// proposal, in proposal order — the model trains on the exact counts
	// proposed, not on values read back from the (quantized) config.
	trainCounts []float64
	xs          [][]float64
	ys          []float64
	counts      []float64
	fitted      bool
}

// NewProposer implements tune.BatchTuner.
func (t *Ernest) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	if _, ok := target.(*spark.Spark); !ok {
		return nil, fmt.Errorf("costmodel/ernest: target %q is not a Spark deployment", target.Name())
	}
	space := target.Space()
	pp, _ := space.Param(spark.NumExecutors)
	maxExec := pp.Max
	points := t.TrainPoints
	if points < 3 {
		points = 5
	}
	if points > b.Trials-1 {
		points = b.Trials - 1
	}
	if points < 3 {
		return nil, fmt.Errorf("costmodel/ernest: budget %d too small (need ≥4 trials)", b.Trials)
	}
	p := &ernestProposer{base: space.Default(), maxExec: maxExec}
	// Sample small scales geometrically up to maxExec/2 (Ernest trains on
	// cheap small configurations).
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		m := math.Round(1 + (maxExec/2-1)*math.Pow(frac, 1.5))
		if m < 1 {
			m = 1
		}
		p.pending = append(p.pending, p.base.WithNative(spark.NumExecutors, m))
		p.trainCounts = append(p.trainCounts, m)
	}
	return p, nil
}

func (p *ernestProposer) Propose(n int) []tune.Config { return tune.ProposeFixed(&p.pending, n) }

func (p *ernestProposer) Observe(t tune.Trial) {
	if len(p.trainCounts) == 0 {
		return // the verification run of the recommendation
	}
	m := p.trainCounts[0]
	p.trainCounts = p.trainCounts[1:]
	if !t.Result.Failed {
		p.xs = append(p.xs, ernestFeatures(m))
		p.ys = append(p.ys, t.Result.Time)
		p.counts = append(p.counts, m)
	}
	if len(p.trainCounts) == 0 && !p.fitted && len(p.xs) >= 3 {
		p.fitted = true
		x := linalg.FromRows(p.xs)
		theta := linalg.SolveNNLS(x, p.ys, 500)
		// Predict across all feasible counts and pick the minimizer.
		bestM, bestPred := p.counts[0], math.Inf(1)
		for m := 1.0; m <= p.maxExec; m++ {
			pred := linalg.Dot(theta, ernestFeatures(m))
			if pred < bestPred {
				bestPred, bestM = pred, m
			}
		}
		p.pending = append(p.pending, p.base.WithNative(spark.NumExecutors, bestM))
	}
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*STMM)(nil)
	_ tune.BatchTuner = (*Starfish)(nil)
	_ tune.BatchTuner = (*Ernest)(nil)
)
