package costmodel

import (
	"context"
	"math"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/tune"
	"repro/internal/workload"
)

// Starfish is the analytical MapReduce what-if engine: given a job profile
// (data-flow statistics that are configuration-independent) and a cluster
// description, it predicts phase times for any configuration with closed
// formulas, then searches the model — not the cluster — for the best
// configuration. Deliberate simplifications versus the simulator: it assumes
// a homogeneous cluster (the first node's spec), perfect waves with no
// stragglers or speculative re-execution, and idealized shuffle overlap.
// Those assumptions are exactly the weaknesses Table 1 lists for cost
// modeling, and the heterogeneity experiment exposes them.
type Starfish struct {
	// SearchBudget is the number of model evaluations (default 3000).
	SearchBudget int
	// Seed drives the model search.
	Seed int64
}

// NewStarfish returns a Starfish tuner with defaults.
func NewStarfish(seed int64) *Starfish { return &Starfish{SearchBudget: 3000, Seed: seed} }

// Name implements tune.Tuner.
func (t *Starfish) Name() string { return "costmodel/starfish" }

// Predict estimates the job runtime under cfg analytically.
func Predict(job *workload.MRJob, cl *cluster.Cluster, cfg tune.Config) float64 {
	node := cl.Nodes[0]
	nNodes := float64(len(cl.Nodes))
	clock := node.ClockGHz

	reduceTasks := float64(cfg.Int(mapreduce.ReduceTasks))
	sortMB := cfg.Float(mapreduce.IOSortMB)
	spillPct := cfg.Float(mapreduce.SpillPercent)
	sortFactor := math.Max(2, float64(cfg.Int(mapreduce.SortFactor)))
	mapCodec := cfg.Str(mapreduce.MapCompression)
	combiner := cfg.Bool(mapreduce.Combiner)
	mapSlots := float64(cfg.Int(mapreduce.MapSlots))
	redSlots := float64(cfg.Int(mapreduce.RedSlots))
	heap := cfg.Float(mapreduce.JVMHeapMB)
	jvmReuse := cfg.Bool(mapreduce.JVMReuse)
	splitMB := cfg.Float(mapreduce.SplitMB)

	// Infeasible regions the model knows about.
	if sortMB > 0.7*heap || heap*(mapSlots+redSlots) > node.RAMMB*0.9 {
		return math.Inf(1)
	}

	codecRatio, codecCPU := 1.0, 0.0
	switch mapCodec {
	case "snappy":
		codecRatio, codecCPU = 0.50, 0.004
	case "gzip":
		codecRatio, codecCPU = 0.35, 0.018
	}
	combFactor, combCPU := 1.0, 0.0
	if combiner && job.CombinerGain > 0 {
		combFactor = 1 - job.CombinerGain
		combCPU = 0.004
	}

	mapTasks := math.Max(1, math.Ceil(job.InputMB/splitMB))
	cpuShare := math.Min(1, float64(node.Cores)/mapSlots)
	diskPerSlot := node.DiskMBps / mapSlots
	jvmStart := 1.2
	if jvmReuse {
		jvmStart = 0.15
	}

	inPerMap := job.InputMB / mapTasks
	outPerMap := inPerMap * job.MapSelectivity
	numSpills := math.Max(1, math.Ceil(outPerMap/(sortMB*spillPct)))
	mergePasses := 0.0
	if numSpills > 1 {
		mergePasses = math.Ceil(math.Log(numSpills) / math.Log(sortFactor))
	}
	spillMB := outPerMap * combFactor * codecRatio * (1 + 2*mergePasses)
	mapTask := jvmStart + inPerMap/diskPerSlot +
		inPerMap*job.MapCPUPerMB/(clock*cpuShare) +
		outPerMap*(combCPU+codecCPU)/(clock*cpuShare) +
		outPerMap*0.002*mergePasses/(clock*cpuShare) +
		spillMB/diskPerSlot
	mapWaves := math.Ceil(mapTasks / (nNodes * mapSlots))
	mapPhase := mapTask * mapWaves

	shuffleMB := job.InputMB * job.MapSelectivity * combFactor * codecRatio
	shuffleBW := math.Min(cl.BisectionMBps, math.Min(reduceTasks, nNodes*redSlots)*node.NetMBps)
	shufflePhase := shuffleMB / math.Max(shuffleBW, 1) * 0.5 // idealized overlap

	redCPUShare := math.Min(1, float64(node.Cores)/redSlots)
	diskPerRed := node.DiskMBps / redSlots
	totalReduceIn := job.InputMB * job.MapSelectivity * combFactor
	inPerRed := totalReduceIn / reduceTasks
	// The model knows about average skew amplification but not the tail.
	skewAmp := 1 + job.SkewTheta
	extraMerge := 0.0
	if mapTasks > sortFactor {
		extraMerge = math.Ceil(math.Log(mapTasks)/math.Log(sortFactor)) - 1
	}
	out := inPerRed * job.ReduceSelectivity
	redTask := jvmStart + inPerRed*codecRatio*2*extraMerge/diskPerRed +
		inPerRed*job.ReduceCPUPerMB/(clock*redCPUShare) +
		out*3/diskPerRed + out*2/(node.NetMBps/redSlots)
	redWaves := math.Ceil(reduceTasks / (nNodes * redSlots))
	redPhase := redTask * redWaves * skewAmp

	return mapPhase + shufflePhase + redPhase + 4
}

// Tune implements tune.Tuner: optimize the analytical model, then spend one
// real run (if budgeted) verifying the winner, via the ask/tell adapter.
func (t *Starfish) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

var _ tune.Tuner = (*Starfish)(nil)
