package costmodel

import (
	"testing"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/workload"
)

func TestStarfishPredictMonotoneInReducers(t *testing.T) {
	cl := cluster.Commodity(8)
	job := workload.TeraSort(10)
	space := mapreduce.Space(cl)
	base := space.Default().With(mapreduce.JVMHeapMB, 1024.0)
	one := Predict(job, cl, base.With(mapreduce.ReduceTasks, 1))
	many := Predict(job, cl, base.With(mapreduce.ReduceTasks, 32))
	if many >= one {
		t.Errorf("model should predict parallel reduce wins: %v vs %v", many, one)
	}
}

func TestStarfishPredictInfeasibleIsInf(t *testing.T) {
	cl := cluster.Commodity(8)
	job := workload.TeraSort(10)
	space := mapreduce.Space(cl)
	bad := space.Default().With(mapreduce.IOSortMB, 1000.0).With(mapreduce.JVMHeapMB, 300.0)
	if v := Predict(job, cl, bad); !isInf(v) {
		t.Errorf("OOM config should predict +Inf, got %v", v)
	}
}

func isInf(v float64) bool { return v > 1e300 }

func TestSTMMRespondsToWorkloadShape(t *testing.T) {
	// STMM's split should shift toward the buffer pool for point-read
	// workloads and toward work memory for sort/join-heavy ones. Exercise
	// the recommendation path through the DBMS target in the integration
	// suite; here check the tuner's knobs exist and defaults are sane.
	s := NewSTMM()
	if s.Step <= 0 || s.Iterations <= 0 {
		t.Errorf("defaults = %+v", s)
	}
}

func TestErnestFeatureBasis(t *testing.T) {
	f := ernestFeatures(4)
	if len(f) != 4 || f[0] != 1 || f[1] != 0.25 {
		t.Errorf("features = %v", f)
	}
	if f[3] != 4 {
		t.Error("linear term wrong")
	}
}

func TestErnestRequiresBudget(t *testing.T) {
	cl := cluster.Commodity(4)
	sp := sparkTargetFor(cl)
	e := NewErnest()
	if _, err := e.Tune(nil, sp, tune.Budget{Trials: 2}); err == nil {
		t.Error("tiny budget should error")
	}
}

// sparkTargetFor builds a tiny Spark target for budget-error checks.
func sparkTargetFor(cl *cluster.Cluster) tune.Target {
	return spark.New(cl, workload.WordCountSpark(1), 1)
}
