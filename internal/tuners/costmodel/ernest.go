package costmodel

import (
	"context"
	"math"

	"repro/internal/tune"
)

// Ernest reproduces the NSDI'16 scale-out predictor: runtime as a function
// of the machine (executor) count m is modeled as
//
//	T(m) = θ₀ + θ₁·(1/m) + θ₂·log(m) + θ₃·m
//
// with θ ≥ 0 fit by non-negative least squares on a handful of training
// runs at small executor counts. The fitted curve then predicts the best
// executor count without running it. Ernest tunes scale, not the long tail
// of knobs — the comparison harness shows it complements rather than
// replaces knob tuners.
type Ernest struct {
	// TrainPoints is how many executor counts to sample (default 5).
	TrainPoints int
}

// NewErnest returns an Ernest tuner with defaults.
func NewErnest() *Ernest { return &Ernest{TrainPoints: 5} }

// Name implements tune.Tuner.
func (t *Ernest) Name() string { return "costmodel/ernest" }

// features returns Ernest's basis for a machine count.
func ernestFeatures(m float64) []float64 {
	return []float64{1, 1 / m, math.Log(m), m}
}

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *Ernest) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

var _ tune.Tuner = (*Ernest)(nil)
