package costmodel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mathx/linalg"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
)

// Ernest reproduces the NSDI'16 scale-out predictor: runtime as a function
// of the machine (executor) count m is modeled as
//
//	T(m) = θ₀ + θ₁·(1/m) + θ₂·log(m) + θ₃·m
//
// with θ ≥ 0 fit by non-negative least squares on a handful of training
// runs at small executor counts. The fitted curve then predicts the best
// executor count without running it. Ernest tunes scale, not the long tail
// of knobs — the comparison harness shows it complements rather than
// replaces knob tuners.
type Ernest struct {
	// TrainPoints is how many executor counts to sample (default 5).
	TrainPoints int
}

// NewErnest returns an Ernest tuner with defaults.
func NewErnest() *Ernest { return &Ernest{TrainPoints: 5} }

// Name implements tune.Tuner.
func (t *Ernest) Name() string { return "costmodel/ernest" }

// features returns Ernest's basis for a machine count.
func ernestFeatures(m float64) []float64 {
	return []float64{1, 1 / m, math.Log(m), m}
}

// Tune implements tune.Tuner.
func (t *Ernest) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	if _, ok := target.(*spark.Spark); !ok {
		return nil, fmt.Errorf("costmodel/ernest: target %q is not a Spark deployment", target.Name())
	}
	space := target.Space()
	p, _ := space.Param(spark.NumExecutors)
	maxExec := p.Max
	points := t.TrainPoints
	if points < 3 {
		points = 5
	}
	if points > b.Trials-1 {
		points = b.Trials - 1
	}
	if points < 3 {
		return nil, fmt.Errorf("costmodel/ernest: budget %d too small (need ≥4 trials)", b.Trials)
	}

	// Sample small scales geometrically up to maxExec/2 (Ernest trains on
	// cheap small configurations).
	s := tune.NewSession(ctx, target, b)
	base := space.Default()
	var xs [][]float64
	var ys []float64
	var counts []float64
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		m := math.Round(1 + (maxExec/2-1)*math.Pow(frac, 1.5))
		if m < 1 {
			m = 1
		}
		cfg := base.WithNative(spark.NumExecutors, m)
		res, err := s.Run(cfg)
		if err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		if res.Failed {
			continue
		}
		xs = append(xs, ernestFeatures(m))
		ys = append(ys, res.Time)
		counts = append(counts, m)
	}
	if len(xs) < 3 {
		return s.Finish(t.Name(), tune.Config{}), nil
	}
	x := linalg.FromRows(xs)
	theta := linalg.SolveNNLS(x, ys, 500)

	// Predict across all feasible counts and pick the minimizer.
	bestM, bestPred := counts[0], math.Inf(1)
	for m := 1.0; m <= maxExec; m++ {
		pred := linalg.Dot(theta, ernestFeatures(m))
		if pred < bestPred {
			bestPred, bestM = pred, m
		}
	}
	rec := base.WithNative(spark.NumExecutors, bestM)
	if !s.Exhausted() {
		if _, err := s.Run(rec); err != nil && err != tune.ErrBudgetExhausted {
			return nil, err
		}
	}
	return s.Finish(t.Name(), rec), nil
}

var _ tune.Tuner = (*Ernest)(nil)
