// Package adaptive implements the survey's sixth category: tuners that
// reconfigure the system while the workload runs, using the epoch hooks
// exposed by tune.AdaptiveTarget.
//
//   - COLT (Schnaitter et al., SIGMOD 2006 demo): epoch-based online tuning
//     with explicit cost-vs-gain accounting — a candidate configuration is
//     adopted only when its observed gain outweighs the switch cost over the
//     remaining epochs.
//   - PartitionController (Gounaris et al., TPDS 2017): dynamic adjustment
//     of Spark's shuffle partitioning between iterations from observed
//     spill and task-overhead signals.
//   - MemoryManager: an online STMM — shifts DBMS work memory in response
//     to observed spills and cache pressure epoch by epoch.
//   - Recommender (mrMoulder, Cai et al., FGCS 2019): cold-starts a new job
//     from the most similar past session in a repository, then refines
//     online.
//
// Adaptive tuning shines on long-running and ad-hoc work — it needs no
// offline phase at all — but every probe epoch executes at the candidate's
// speed, so bad probes cost real time; the cost-gain ledger below is the
// guard the paper describes.
package adaptive

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tune"
)

// COLT is an online epoch tuner usable as a tune.EpochController and, via
// Tune, as a tune.Tuner over adaptive targets.
type COLT struct {
	Seed int64
	// Radius is the perturbation radius for candidate generation
	// (default 0.10).
	Radius float64
	// SwitchCost is the assumed epochs-equivalent cost of adopting a new
	// configuration (default 0.08).
	SwitchCost float64
	// Runs is how many adaptive runs Tune performs (default 2): the first
	// explores, later runs start from the best found so far.
	Runs int
	// TopKnobs bounds online probing to the highest-impact parameters
	// (default 6): a live system cannot afford to wiggle every knob.
	TopKnobs int
}

// NewCOLT returns a COLT tuner with defaults.
func NewCOLT(seed int64) *COLT {
	return &COLT{Seed: seed, Radius: 0.18, SwitchCost: 0.08, Runs: 2, TopKnobs: 6}
}

// Name implements tune.Tuner.
func (t *COLT) Name() string { return "adaptive/colt" }

// controller is one adaptive run's state.
type controller struct {
	rng        *rand.Rand
	radius     float64
	switchCost float64
	epochs     int

	space *tune.Space
	// probeIdx limits perturbation to these parameter indices (nil = all).
	probeIdx []int
	current  tune.Config
	curPerf  float64 // smoothed epoch objective of current config
	haveCur  bool
	probing  bool
	probeCfg tune.Config
	// lastDelta remembers the direction of the last adopted probe so the
	// next probe continues along it (directional momentum); pendingDelta is
	// the in-flight probe's direction.
	lastDelta    []float64
	pendingDelta []float64
	probeCursor  int

	best     tune.Config
	bestPerf float64
}

// perturb probes one eligible knob at a time (round-robin), continuing the
// last successful direction when one exists. Single-knob probes keep the
// observed gain attributable — the property COLT's cost/gain ledger needs.
func (c *controller) perturb(cfg tune.Config) tune.Config {
	x := cfg.Vector()
	delta := make([]float64, len(x))
	idx := c.probeIdx
	if idx == nil {
		idx = make([]int, len(x))
		for i := range idx {
			idx[i] = i
		}
	}
	if c.lastDelta != nil {
		// Momentum: push the previously adopted direction further.
		for j := range delta {
			delta[j] = 1.4 * c.lastDelta[j]
		}
	} else {
		j := idx[c.probeCursor%len(idx)]
		c.probeCursor++
		step := c.radius * (1 + c.rng.Float64())
		if c.rng.Intn(2) == 0 {
			step = -step
		}
		delta[j] = step
	}
	for j := range delta {
		if delta[j] != 0 {
			x[j] = clamp01(x[j] + delta[j])
		}
	}
	out := c.space.FromVector(x)
	c.pendingDelta = delta
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Epoch implements tune.EpochController with COLT's observe → probe →
// adopt-or-rollback cycle. Epoch metrics arrive via prev; the objective
// proxy is the epoch's elapsed share, approximated here by io+cpu time
// metrics when present, else by a counter the caller provides as
// "epoch_time".
func (c *controller) Epoch(i int, current tune.Config, prev map[string]float64) tune.Config {
	perf := epochObjective(prev)
	if i == 0 {
		c.current = current
		c.best = current
		c.bestPerf = math.Inf(1)
		return current
	}
	switch {
	case c.probing:
		// prev measured the probe configuration.
		c.probing = false
		remaining := float64(c.epochs - i)
		gain := c.curPerf - perf
		if c.haveCur && gain > 0 && gain*remaining > c.switchCost*c.curPerf {
			// Adopt: the gain over remaining epochs pays the switch cost.
			c.current = c.probeCfg
			c.curPerf = perf
			c.lastDelta = c.pendingDelta // keep pushing this direction
		} else {
			// Roll back and abandon the direction.
			c.lastDelta = nil
			if perf < c.bestPerf {
				c.best, c.bestPerf = c.probeCfg, perf
			}
			return c.current
		}
	default:
		// prev measured the current configuration: smooth its estimate.
		if !c.haveCur {
			c.curPerf = perf
			c.haveCur = true
		} else {
			c.curPerf = 0.7*c.curPerf + 0.3*perf
		}
	}
	if c.curPerf < c.bestPerf {
		c.best, c.bestPerf = c.current, c.curPerf
	}
	// Launch a new probe every other epoch.
	if i%2 == 0 && i < c.epochs-1 {
		c.probeCfg = c.perturb(c.current)
		c.probing = true
		return c.probeCfg
	}
	return c.current
}

// epochObjective condenses epoch metrics into a scalar to minimize.
func epochObjective(m map[string]float64) float64 {
	if m == nil {
		return math.Inf(1)
	}
	if v, ok := m["epoch_time"]; ok {
		return v
	}
	// Fall back to time-like components the simulators expose.
	return m["io_time_s"] + m["cpu_time_s"] + m["lock_wait_s"] + m["spilled_mb"]*0.001
}

// Controller returns a fresh tune.EpochController configured like the tuner,
// for callers that drive tune.AdaptiveTarget.RunAdaptive directly (e.g. a
// streaming deployment adapting from an informed static configuration).
func (t *COLT) Controller(space *tune.Space, rng *rand.Rand, epochs int) tune.EpochController {
	return &controller{
		rng:        rng,
		radius:     t.Radius,
		switchCost: t.SwitchCost,
		epochs:     epochs,
		space:      space,
		probeIdx:   t.probeIndices(space),
	}
}

// probeIndices selects the runtime-adjustable, effective knobs to probe.
func (t *COLT) probeIndices(space *tune.Space) []int {
	topK := t.TopKnobs
	if topK <= 0 {
		topK = 6
	}
	if topK > space.Dim() {
		topK = space.Dim()
	}
	probeIdx := make([]int, 0, topK)
	for _, name := range space.ByImpact() {
		p, _ := space.Param(name)
		if p.Restart || p.Inert {
			continue
		}
		probeIdx = append(probeIdx, space.IndexOf(name))
		if len(probeIdx) == topK {
			break
		}
	}
	return probeIdx
}

// Tune implements tune.Tuner over adaptive targets: each budgeted trial is
// one adaptive run; within a run, reconfiguration is free of trial cost but
// pays real (simulated) time, exactly the trade the category makes.
func (t *COLT) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	at, ok := target.(tune.AdaptiveTarget)
	if !ok {
		return nil, fmt.Errorf("adaptive/colt: target %q does not support online reconfiguration", target.Name())
	}
	runs := t.Runs
	if runs <= 0 {
		runs = 2
	}
	if runs > b.Trials {
		runs = b.Trials
	}
	s := tune.NewSession(ctx, target, b)
	space := target.Space()
	start := space.Default()
	// Probe only runtime-adjustable, effective knobs: a live system cannot
	// restart mid-workload, and inert knobs waste probe epochs.
	probeIdx := t.probeIndices(space)
	var lastBest tune.Config
	for r := 0; r < runs && !s.Exhausted(); r++ {
		ctl := &controller{
			rng:        rand.New(rand.NewSource(t.Seed + int64(r)*7919)),
			radius:     t.Radius,
			switchCost: t.SwitchCost,
			epochs:     at.Epochs(),
			space:      space,
			probeIdx:   probeIdx,
		}
		res := adaptiveRunViaSession(s, at, start, ctl)
		if res == nil {
			break
		}
		lastBest = ctl.best
		start = ctl.best // next run starts where this one converged
	}
	return s.Finish(t.Name(), lastBest), nil
}

// adaptiveRunViaSession performs one adaptive run, charging it to the
// session as a single trial (recorded under the run's final configuration).
// It returns nil when the budget is exhausted.
func adaptiveRunViaSession(s *tune.Session, at tune.AdaptiveTarget, start tune.Config, ctl tune.EpochController) *tune.Result {
	if s.Exhausted() {
		return nil
	}
	res := at.RunAdaptive(start, ctl)
	// Record through the session for uniform accounting: we re-inject the
	// result by running a zero-cost shadow... the session API only supports
	// Run, so instead we account the adaptive run directly.
	s.RecordExternal(start, res)
	return &res
}

var _ tune.Tuner = (*COLT)(nil)
var _ tune.EpochController = (*controller)(nil)
