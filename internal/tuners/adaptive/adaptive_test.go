package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tune"
)

func ctlSpace() *tune.Space {
	return tune.NewSpace(
		tune.Float("a", 0, 1, 0.5).WithDoc("main", 9),
		tune.Float("b", 0, 1, 0.5).WithDoc("minor", 2),
		tune.Float("locked", 0, 1, 0.5).WithDoc("deploy", 10).WithRestart(),
	)
}

func TestCOLTControllerAdoptsImprovingProbe(t *testing.T) {
	space := ctlSpace()
	colt := NewCOLT(1)
	ctl := colt.Controller(space, rand.New(rand.NewSource(1)), 20).(*controller)
	cur := space.Default()
	// Epoch 0: initialization.
	cur = ctl.Epoch(0, cur, nil)
	// Feed a stable baseline then an improving probe.
	perf := func(v float64) map[string]float64 { return map[string]float64{"epoch_time": v} }
	cur = ctl.Epoch(1, cur, perf(100)) // baseline
	next := ctl.Epoch(2, cur, perf(100))
	if !ctl.probing {
		t.Fatal("controller should probe on even epochs")
	}
	// The probe reports a big win: it must be adopted.
	adopted := ctl.Epoch(3, next, perf(40))
	if adopted.Distance(cur) == 0 {
		t.Error("improving probe should be adopted")
	}
	if ctl.curPerf != 40 {
		t.Errorf("curPerf = %v, want 40", ctl.curPerf)
	}
}

func TestCOLTControllerRollsBackRegression(t *testing.T) {
	space := ctlSpace()
	colt := NewCOLT(2)
	ctl := colt.Controller(space, rand.New(rand.NewSource(2)), 20).(*controller)
	perf := func(v float64) map[string]float64 { return map[string]float64{"epoch_time": v} }
	cur := ctl.Epoch(0, space.Default(), nil)
	cur = ctl.Epoch(1, cur, perf(100))
	probe := ctl.Epoch(2, cur, perf(100))
	back := ctl.Epoch(3, probe, perf(500)) // probe was terrible
	if back.Distance(cur) != 0 {
		t.Error("regressing probe must be rolled back")
	}
	if ctl.lastDelta != nil {
		t.Error("momentum must reset after rollback")
	}
}

func TestCOLTNeverProbesRestartKnobs(t *testing.T) {
	space := ctlSpace()
	colt := NewCOLT(3)
	ctl := colt.Controller(space, rand.New(rand.NewSource(3)), 40).(*controller)
	lockIdx := space.IndexOf("locked")
	for _, j := range ctl.probeIdx {
		if j == lockIdx {
			t.Fatal("restart knob must not be probed online")
		}
	}
	// Run a long synthetic session and confirm the locked coordinate never
	// moves.
	perf := func(v float64) map[string]float64 { return map[string]float64{"epoch_time": v} }
	cur := ctl.Epoch(0, space.Default(), nil)
	start := space.Default().Native("locked")
	for i := 1; i < 40; i++ {
		cur = ctl.Epoch(i, cur, perf(100-float64(i)))
		if cur.Native("locked") != start {
			t.Fatalf("epoch %d moved the restart knob", i)
		}
	}
}

func TestEpochObjectiveFallbacks(t *testing.T) {
	if !math.IsInf(epochObjective(nil), 1) {
		t.Error("nil metrics should be +Inf")
	}
	if epochObjective(map[string]float64{"epoch_time": 7}) != 7 {
		t.Error("epoch_time should win")
	}
	v := epochObjective(map[string]float64{"io_time_s": 2, "cpu_time_s": 3})
	if v != 5 {
		t.Errorf("fallback objective = %v", v)
	}
}

func TestPartitionControllerGrowsOnSpill(t *testing.T) {
	space := tune.NewSpace(tune.LogInt("spark_sql_shuffle_partitions", 8, 4096, 200))
	pc := NewPartitionController()
	cur := space.Default()
	cur = pc.Epoch(0, cur, nil)
	next := pc.Epoch(1, cur, map[string]float64{"spilled_mb": 50, "epoch_time": 10})
	if next.Int("spark_sql_shuffle_partitions") <= cur.Int("spark_sql_shuffle_partitions") {
		t.Error("spills should grow partitions")
	}
}

func TestPartitionControllerRevertsRegression(t *testing.T) {
	space := tune.NewSpace(tune.LogInt("spark_sql_shuffle_partitions", 8, 4096, 200))
	pc := NewPartitionController()
	cur := pc.Epoch(0, space.Default(), nil)
	// Shrink action (no spill, lots of partitions).
	shrunk := pc.Epoch(1, cur, map[string]float64{"spilled_mb": 0, "epoch_time": 10})
	if shrunk.Int("spark_sql_shuffle_partitions") >= cur.Int("spark_sql_shuffle_partitions") {
		t.Fatal("expected shrink")
	}
	// The shrink regressed hard: controller must revert upward.
	reverted := pc.Epoch(2, shrunk, map[string]float64{"spilled_mb": 0, "epoch_time": 50})
	if reverted.Int("spark_sql_shuffle_partitions") <= shrunk.Int("spark_sql_shuffle_partitions") {
		t.Error("regression should trigger a revert")
	}
}

func TestMemoryManagerShedsOnPressure(t *testing.T) {
	space := tune.NewSpace(
		tune.LogFloat("work_mem_mb", 1, 2048, 64),
		tune.LogFloat("buffer_pool_mb", 64, 16384, 1024),
	)
	mm := NewMemoryManager()
	cur := space.Default()
	next := mm.Epoch(1, cur, map[string]float64{"mem_oversubscription": 1.2})
	if next.Float("work_mem_mb") >= cur.Float("work_mem_mb") {
		t.Error("oversubscription must shed work memory")
	}
	grown := mm.Epoch(2, cur, map[string]float64{"spilled_queries": 5})
	if grown.Float("work_mem_mb") <= cur.Float("work_mem_mb") {
		t.Error("spills must grow work memory")
	}
	cached := mm.Epoch(3, cur, map[string]float64{"buffer_hit_ratio": 0.5})
	if cached.Float("buffer_pool_mb") <= cur.Float("buffer_pool_mb") {
		t.Error("poor hit ratio must grow the buffer pool")
	}
}
