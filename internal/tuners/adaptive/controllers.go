package adaptive

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/tune"
)

// PartitionController adapts Spark's shuffle partition count between
// iterations, after Gounaris et al.: spills mean partitions are too coarse
// (grow them); vanishing per-task work means scheduling overhead dominates
// (shrink them). It is a pure tune.EpochController; pair it with
// AdaptiveTuner to use it as a tune.Tuner.
type PartitionController struct {
	// Param is the partition parameter name (default
	// "spark_sql_shuffle_partitions").
	Param string
	// Grow and Shrink are the adjustment factors (defaults 1.6 / 0.7).
	Grow, Shrink float64

	lastPerf   float64
	lastAction int // -1 shrink, 0 none, +1 grow
	cooldown   int
}

// NewPartitionController returns a controller with defaults.
func NewPartitionController() *PartitionController {
	return &PartitionController{Param: "spark_sql_shuffle_partitions", Grow: 1.6, Shrink: 0.7}
}

// Epoch implements tune.EpochController. A change that regressed the epoch
// objective is reverted and followed by a cooldown, so the controller cannot
// walk the partition count off a cliff.
func (p *PartitionController) Epoch(i int, current tune.Config, prev map[string]float64) tune.Config {
	if i == 0 || prev == nil {
		return current
	}
	if _, ok := current.Space().Param(p.Param); !ok {
		return current
	}
	perf := epochObjective(prev)
	parts := current.Native(p.Param)
	defer func() { p.lastPerf = perf }()
	if p.lastAction != 0 && p.lastPerf > 0 && perf > p.lastPerf*1.05 {
		// Revert the regressing change.
		factor := p.Grow
		if p.lastAction > 0 {
			factor = 1 / p.Grow
		} else {
			factor = 1 / p.Shrink
		}
		p.lastAction = 0
		p.cooldown = 2
		return current.WithNative(p.Param, parts*factor)
	}
	if p.cooldown > 0 {
		p.cooldown--
		p.lastAction = 0
		return current
	}
	switch {
	case prev["spilled_mb"] > 1:
		p.lastAction = 1
		return current.WithNative(p.Param, parts*p.Grow)
	case prev["spilled_mb"] == 0 && parts > 32:
		// No spill and plenty of headroom: fewer, larger tasks cut
		// scheduling overhead.
		p.lastAction = -1
		return current.WithNative(p.Param, parts*p.Shrink)
	}
	p.lastAction = 0
	return current
}

// MemoryManager is the online STMM: between DBMS epochs it grows work
// memory while spills persist and shrinks it when memory pressure
// (oversubscription) appears, trading against the buffer pool.
type MemoryManager struct {
	// WorkParam and BufferParam name the managed knobs.
	WorkParam, BufferParam string
}

// NewMemoryManager returns a manager for the DBMS simulator's knobs.
func NewMemoryManager() *MemoryManager {
	return &MemoryManager{WorkParam: "work_mem_mb", BufferParam: "buffer_pool_mb"}
}

// Epoch implements tune.EpochController.
func (m *MemoryManager) Epoch(i int, current tune.Config, prev map[string]float64) tune.Config {
	if i == 0 || prev == nil {
		return current
	}
	cfg := current
	if prev["mem_oversubscription"] > 1 {
		// Swapping is catastrophic: shed memory immediately.
		if _, ok := cfg.Space().Param(m.WorkParam); ok {
			cfg = cfg.WithNative(m.WorkParam, cfg.Native(m.WorkParam)*0.5)
		}
		return cfg
	}
	if prev["spilled_queries"] > 0 {
		if _, ok := cfg.Space().Param(m.WorkParam); ok {
			cfg = cfg.WithNative(m.WorkParam, cfg.Native(m.WorkParam)*1.8)
		}
	} else if prev["buffer_hit_ratio"] < 0.85 {
		if _, ok := cfg.Space().Param(m.BufferParam); ok {
			cfg = cfg.WithNative(m.BufferParam, cfg.Native(m.BufferParam)*1.4)
		}
	}
	return cfg
}

// AdaptiveTuner lifts any tune.EpochController into a tune.Tuner: each
// budgeted trial is one adaptive run under the controller.
type AdaptiveTuner struct {
	Label      string
	Controller tune.EpochController
	// Runs per Tune call (default 2).
	Runs int
}

// Name implements tune.Tuner.
func (a *AdaptiveTuner) Name() string { return "adaptive/" + a.Label }

// Tune implements tune.Tuner.
func (a *AdaptiveTuner) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	at, ok := target.(tune.AdaptiveTarget)
	if !ok {
		return nil, fmt.Errorf("adaptive/%s: target %q does not support online reconfiguration", a.Label, target.Name())
	}
	runs := a.Runs
	if runs <= 0 {
		runs = 2
	}
	if runs > b.Trials {
		runs = b.Trials
	}
	s := tune.NewSession(ctx, target, b)
	start := target.Space().Default()
	for r := 0; r < runs && !s.Exhausted(); r++ {
		res := at.RunAdaptive(start, a.Controller)
		s.RecordExternal(start, res)
	}
	return s.Finish(a.Name(), tune.Config{}), nil
}

// Recommender is the mrMoulder-style recommendation tuner: cold-start from
// the most similar past session's best configuration, then refine online
// with a small perturbation search between epochs.
type Recommender struct {
	Seed int64
	Repo *tune.Repository
	// Runs per Tune call (default 2).
	Runs int
}

// NewRecommender returns a repository-backed recommender.
func NewRecommender(seed int64, repo *tune.Repository) *Recommender {
	return &Recommender{Seed: seed, Repo: repo, Runs: 2}
}

// Name implements tune.Tuner.
func (r *Recommender) Name() string { return "adaptive/recommender" }

// warmStart returns the best configuration of the most similar session, or
// the default when the repository has nothing usable.
func (r *Recommender) warmStart(target tune.Target) tune.Config {
	space := target.Space()
	def := space.Default()
	if r.Repo == nil {
		return def
	}
	var features map[string]float64
	if d, ok := target.(tune.Describer); ok {
		features = d.WorkloadFeatures()
	}
	for _, sess := range r.Repo.SimilarSessions(system(target.Name()), features) {
		if len(sess.ParamNames) != space.Dim() {
			continue
		}
		if at := sess.BestTrial(); at >= 0 {
			return space.FromVector(sess.Trials[at].Vector)
		}
	}
	return def
}

func system(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}

// Tune implements tune.Tuner. On adaptive targets it refines the warm start
// online with COLT's controller; on plain targets it evaluates the warm
// start directly (recommendation without refinement).
func (r *Recommender) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	start := r.warmStart(target)
	s := tune.NewSession(ctx, target, b)
	at, adaptive := target.(tune.AdaptiveTarget)
	if !adaptive {
		if b.Trials > 0 {
			if _, err := s.Run(start); err != nil && err != tune.ErrBudgetExhausted {
				return nil, err
			}
		}
		return s.Finish(r.Name(), start), nil
	}
	runs := r.Runs
	if runs <= 0 {
		runs = 2
	}
	if runs > b.Trials {
		runs = b.Trials
	}
	cur := start
	for i := 0; i < runs && !s.Exhausted(); i++ {
		ctl := &controller{
			rng:        rand.New(rand.NewSource(r.Seed + int64(i)*104729)),
			radius:     0.08, // refine, don't wander: the start is informed
			switchCost: 0.08,
			epochs:     at.Epochs(),
			space:      target.Space(),
		}
		res := at.RunAdaptive(cur, ctl)
		s.RecordExternal(cur, res)
		cur = ctl.best
	}
	return s.Finish(r.Name(), cur), nil
}

var (
	_ tune.EpochController = (*PartitionController)(nil)
	_ tune.EpochController = (*MemoryManager)(nil)
	_ tune.Tuner           = (*AdaptiveTuner)(nil)
	_ tune.Tuner           = (*Recommender)(nil)
)
