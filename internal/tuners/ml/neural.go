package ml

import (
	"context"
	"math/rand"

	"repro/internal/mathx/nn"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// NeuralTuner reproduces the Rodd & Kulkarni adaptive neural tuner: an MLP
// learns the configuration → runtime surface from observations; each step
// searches the surrogate for its predicted minimum, evaluates it for real,
// and retrains. An ε-greedy random trial keeps the surrogate from collapsing
// onto its own blind spots.
type NeuralTuner struct {
	Seed int64
	// Hidden is the hidden layer width (default 24).
	Hidden int
	// Epsilon is the random-exploration probability (default 0.2).
	Epsilon float64
	// InitObs seeds the surrogate (default 2·dim, at least 6).
	InitObs int
}

// NewNeuralTuner returns a neural tuner with defaults.
func NewNeuralTuner(seed int64) *NeuralTuner {
	return &NeuralTuner{Seed: seed, Hidden: 24, Epsilon: 0.2}
}

// Name implements tune.Tuner.
func (t *NeuralTuner) Name() string { return "ml/neural" }

// Tune implements tune.Tuner.
func (t *NeuralTuner) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	s := tune.NewSession(ctx, target, b)

	initN := t.InitObs
	if initN <= 0 {
		initN = 2 * d
		if initN < 6 {
			initN = 6
		}
		if initN > b.Trials/2 && b.Trials >= 4 {
			initN = b.Trials / 2
		}
	}
	var xs [][]float64
	var ys []float64
	for _, p := range sample.LatinHypercube(initN, d, rng) {
		if s.Exhausted() {
			break
		}
		res, err := s.Run(space.FromVector(p))
		if err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		xs = append(xs, p)
		ys = append(ys, res.Objective())
	}

	hidden := t.Hidden
	if hidden <= 0 {
		hidden = 24
	}
	eps := t.Epsilon
	if eps <= 0 {
		eps = 0.2
	}
	for !s.Exhausted() {
		var x []float64
		if len(xs) >= 4 && rng.Float64() >= eps {
			net := nn.NewMLP(rand.New(rand.NewSource(t.Seed+int64(len(xs)))), d, hidden, hidden, 1)
			net.Train(xs, ys, 150, 0.01)
			best := opt.RecursiveRandomSearch(func(p []float64) float64 {
				return net.Predict(p)
			}, d, 600, rng)
			x = best.X
		} else {
			x = make([]float64, d)
			for i := range x {
				x[i] = rng.Float64()
			}
		}
		res, err := s.Run(space.FromVector(x))
		if err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		xs = append(xs, x)
		ys = append(ys, res.Objective())
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

var _ tune.Tuner = (*NeuralTuner)(nil)
