package ml

import (
	"context"

	"repro/internal/tune"
)

// NeuralTuner reproduces the Rodd & Kulkarni adaptive neural tuner: an MLP
// learns the configuration → runtime surface from observations; each step
// searches the surrogate for its predicted minimum, evaluates it for real,
// and retrains. An ε-greedy random trial keeps the surrogate from collapsing
// onto its own blind spots.
type NeuralTuner struct {
	Seed int64
	// Hidden is the hidden layer width (default 24).
	Hidden int
	// Epsilon is the random-exploration probability (default 0.2).
	Epsilon float64
	// InitObs seeds the surrogate (default 2·dim, at least 6).
	InitObs int
}

// NewNeuralTuner returns a neural tuner with defaults.
func NewNeuralTuner(seed int64) *NeuralTuner {
	return &NeuralTuner{Seed: seed, Hidden: 24, Epsilon: 0.2}
}

// Name implements tune.Tuner.
func (t *NeuralTuner) Name() string { return "ml/neural" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *NeuralTuner) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

var _ tune.Tuner = (*NeuralTuner)(nil)
