package ml

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/tune"
	"repro/internal/workload"
)

func testTarget(seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), workload.TPCHLike(2), seed)
}

// syntheticSessions builds a repository corpus whose metrics fall into two
// correlated families (io-driven and cpu-driven) plus one constant metric,
// the structure OtterTune's PCA + k-means pruning is meant to collapse.
func syntheticSessions(trials int) []tune.SessionRecord {
	rng := rand.New(rand.NewSource(1))
	var s tune.SessionRecord
	s.System, s.Workload = "dbms", "synthetic"
	for i := 0; i < trials; i++ {
		io := rng.Float64() * 100
		cpu := rng.Float64() * 10
		s.Trials = append(s.Trials, tune.TrialRecord{
			Vector: []float64{rng.Float64()},
			Time:   io + cpu,
			Metrics: map[string]float64{
				"io_time_s":    io,
				"seq_read_mb":  io * 50,
				"rand_read_mb": io * 5,
				"cpu_time_s":   cpu,
				"cycles_k":     cpu * 1000,
				"constant":     42,
			},
		})
	}
	return []tune.SessionRecord{s}
}

func TestMetricNamesSortedUnion(t *testing.T) {
	names := metricNames(syntheticSessions(6))
	want := []string{"constant", "cpu_time_s", "cycles_k", "io_time_s", "rand_read_mb", "seq_read_mb"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
}

func TestPruneMetricsKeepsRepresentatives(t *testing.T) {
	sessions := syntheticSessions(40)
	all := metricNames(sessions)
	pruned := pruneMetrics(sessions, 3, rand.New(rand.NewSource(7)))
	if len(pruned) == 0 || len(pruned) > 3 {
		t.Fatalf("pruned to %d metrics, want 1..3: %v", len(pruned), pruned)
	}
	valid := map[string]bool{}
	for _, n := range all {
		valid[n] = true
	}
	seen := map[string]bool{}
	for _, n := range pruned {
		if !valid[n] {
			t.Fatalf("pruning invented metric %q", n)
		}
		if seen[n] {
			t.Fatalf("pruning repeated metric %q", n)
		}
		seen[n] = true
	}
	// Deterministic given the rng seed.
	again := pruneMetrics(sessions, 3, rand.New(rand.NewSource(7)))
	if len(again) != len(pruned) {
		t.Fatalf("pruning not deterministic: %v vs %v", pruned, again)
	}
	for i := range pruned {
		if pruned[i] != again[i] {
			t.Fatalf("pruning not deterministic: %v vs %v", pruned, again)
		}
	}
}

func TestPruneMetricsSmallCorpusPassthrough(t *testing.T) {
	sessions := syntheticSessions(2) // < 4 observation rows
	got := pruneMetrics(sessions, 3, rand.New(rand.NewSource(1)))
	if len(got) != 3 {
		t.Fatalf("small corpus should truncate to keep: got %v", got)
	}
}

func TestRankKnobsFallsBackToImpact(t *testing.T) {
	space := testTarget(1).Space()
	ranking := rankKnobs(space, nil) // no sessions → documentation impact
	impact := space.ByImpact()
	if len(ranking) != len(impact) {
		t.Fatalf("ranking covers %d of %d knobs", len(ranking), len(impact))
	}
	for i := range impact {
		if ranking[i] != impact[i] {
			t.Fatalf("cold ranking differs from ByImpact at %d: %v", i, ranking)
		}
	}
}

func TestOtterTuneProposerPhases(t *testing.T) {
	ot := NewOtterTune(3, nil)
	target := testTarget(3)
	p, err := ot.NewProposer(target, tune.Budget{Trials: 20})
	if err != nil {
		t.Fatal(err)
	}
	init := p.Propose(20)
	if len(init) != 6 { // default config + InitObs LHS points
		t.Fatalf("init batch has %d configs, want 6", len(init))
	}
	if init[0].String() != target.Space().Default().String() {
		t.Fatal("first observation should be the default configuration")
	}
	for i, cfg := range init {
		p.Observe(tune.Trial{N: i + 1, Config: cfg, Result: tune.Result{Time: float64(200 - i)}})
	}
	round := p.Propose(20)
	if len(round) == 0 || len(round) > 4 {
		t.Fatalf("GP round proposed %d candidates, want 1..4", len(round))
	}
}

// TestOtterTuneReoptimizeEvery mirrors the iTuned knob: incremental GP
// conditioning between hyper searches must stay deterministic and tune.
func TestOtterTuneReoptimizeEvery(t *testing.T) {
	run := func() *tune.TuningResult {
		ot := NewOtterTune(9, nil)
		ot.ReoptimizeEvery = 4
		r, err := ot.Tune(context.Background(), testTarget(9), tune.Budget{Trials: 20})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i].Config.String() != b.Trials[i].Config.String() {
			t.Fatalf("trial %d differs between identical runs", i+1)
		}
	}
	def := testTarget(9).Run(testTarget(9).Space().Default())
	if a.BestResult.Time >= def.Time {
		t.Errorf("ReoptimizeEvery=4 run did not improve on default: %v vs %v",
			a.BestResult.Time, def.Time)
	}
}

func TestOtterTuneColdStartImproves(t *testing.T) {
	target := testTarget(5)
	def := target.Run(target.Space().Default())
	r, err := NewOtterTune(5, nil).Tune(context.Background(), testTarget(6), tune.Budget{Trials: 15})
	if err != nil {
		t.Fatal(err)
	}
	if r.BestResult.Time >= def.Time {
		t.Errorf("cold-start OtterTune did not improve: %v vs default %v", r.BestResult.Time, def.Time)
	}
	if len(r.Trials) > 15 {
		t.Errorf("budget exceeded: %d trials", len(r.Trials))
	}
}
