package ml

import (
	"math"
	"math/rand"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/nn"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// Ask/tell forms of the ML tuners. OtterTune's offline phase (metric
// pruning, Lasso knob ranking) runs at proposer construction; the initial
// observations are one batch; workload mapping happens once, after the
// batch is observed; GP rounds then propose up to Batch candidates via
// penalized EI over the active knobs. The neural tuner batches its
// initialization and stays one-at-a-time afterwards — each proposal
// retrains the surrogate on everything observed so far.

// otProposer is OtterTune in ask/tell form.
type otProposer struct {
	t     *OtterTune
	space *tune.Space
	rng   *rand.Rand
	batch int

	sessions []tune.SessionRecord
	pruned   []string
	active   []int
	topK     int

	pending []tune.Config
	mapped  bool

	xs, mappedX [][]float64
	ys, mappedY []float64
	observed    map[string]float64
	nObs        float64
	bestX       []float64
	incumbent   float64
}

// NewProposer implements tune.BatchTuner: the offline phase.
func (t *OtterTune) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))

	var sessions []tune.SessionRecord
	if t.Repo != nil {
		sessions = t.Repo.ForSystem(system(target.Name()))
	}
	keep := t.PrunedMetrics
	if keep <= 0 {
		keep = 6
	}
	pruned := pruneMetrics(sessions, keep, rng)
	t.LastPrunedMetrics = pruned
	ranking := rankKnobs(space, sessions)
	t.LastKnobRanking = ranking
	topK := t.TopKnobs
	if topK <= 0 {
		topK = 8
	}
	if topK > len(ranking) {
		topK = len(ranking)
	}
	active := make([]int, topK)
	for i, n := range ranking[:topK] {
		active[i] = space.IndexOf(n)
	}

	initN := t.InitObs
	if initN <= 0 {
		initN = 5
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 4
	}
	p := &otProposer{
		t: t, space: space, rng: rng, batch: batch,
		sessions: sessions, pruned: pruned, active: active, topK: topK,
		observed: map[string]float64{}, incumbent: math.Inf(1),
	}
	p.pending = append(p.pending, space.Default())
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

// mapWorkloadOnce borrows the nearest past workload's observations, scaled
// to the target's observed objective level.
func (p *otProposer) mapWorkloadOnce() {
	p.mapped = true
	if len(p.sessions) == 0 || p.nObs == 0 {
		return
	}
	avg := make(map[string]float64, len(p.observed))
	for k, v := range p.observed {
		avg[k] = v / p.nObs
	}
	at := mapWorkload(p.sessions, p.pruned, avg)
	if at < 0 {
		return
	}
	sess := p.sessions[at]
	p.t.LastMappedWorkload = sess.Workload
	if len(sess.ParamNames) != p.space.Dim() {
		return
	}
	var vals []float64
	for _, tr := range sess.Trials {
		vals = append(vals, tr.Time)
	}
	tm, tsd := medianIQR(vals)
	om, osd := medianIQR(p.ys)
	for _, tr := range sess.Trials {
		p.mappedX = append(p.mappedX, tr.Vector)
		p.mappedY = append(p.mappedY, om+(tr.Time-tm)/tsd*osd)
	}
}

func (p *otProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	if !p.mapped {
		p.mapWorkloadOnce()
	}
	gx := append(append([][]float64(nil), p.mappedX...), p.xs...)
	gy := append(append([]float64(nil), p.mappedY...), p.ys...)
	model := gp.New(gp.Matern52)
	if err := model.Fit(gx, gy, len(gx) <= 80); err != nil {
		return []tune.Config{p.space.Random(p.rng)}
	}
	k := p.batch
	if k > n {
		k = n
	}
	base := p.bestX
	out := make([]tune.Config, 0, k)
	var chosen [][]float64
	for i := 0; i < k; i++ {
		next := opt.MultiStart(func(sub []float64) float64 {
			x := append([]float64(nil), base...)
			for j, v := range sub {
				x[p.active[j]] = v
			}
			v := -model.ExpectedImprovement(x, p.incumbent)
			for _, c := range chosen {
				v *= 1 - math.Exp(-sqDistSub(sub, c)/(0.15*0.15))
			}
			return v
		}, p.topK, 6, 50, [][]float64{subVector(base, p.active)}, p.rng)
		sub := next.X
		if next.F >= 0 { // no positive EI: explore the active knobs
			sub = make([]float64, p.topK)
			for j := range sub {
				sub[j] = p.rng.Float64()
			}
		}
		chosen = append(chosen, sub)
		x := append([]float64(nil), base...)
		for j, v := range sub {
			x[p.active[j]] = v
		}
		out = append(out, p.space.FromVector(x))
	}
	return out
}

func (p *otProposer) Observe(t tune.Trial) {
	x := t.Config.Vector()
	y := t.Result.Objective()
	p.xs = append(p.xs, x)
	p.ys = append(p.ys, y)
	for k, v := range t.Result.Metrics {
		p.observed[k] += v
	}
	p.nObs++
	if y < p.incumbent {
		p.incumbent, p.bestX = y, x
	}
}

func sqDistSub(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// neuralProposer is the Rodd & Kulkarni tuner in ask/tell form.
type neuralProposer struct {
	t     *NeuralTuner
	space *tune.Space
	rng   *rand.Rand

	pending []tune.Config
	xs      [][]float64
	ys      []float64
	hidden  int
	eps     float64
}

// NewProposer implements tune.BatchTuner.
func (t *NeuralTuner) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	initN := t.InitObs
	if initN <= 0 {
		initN = 2 * d
		if initN < 6 {
			initN = 6
		}
		if initN > b.Trials/2 && b.Trials >= 4 {
			initN = b.Trials / 2
		}
	}
	hidden := t.Hidden
	if hidden <= 0 {
		hidden = 24
	}
	eps := t.Epsilon
	if eps <= 0 {
		eps = 0.2
	}
	p := &neuralProposer{t: t, space: space, rng: rng, hidden: hidden, eps: eps}
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

func (p *neuralProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	d := p.space.Dim()
	var x []float64
	if len(p.xs) >= 4 && p.rng.Float64() >= p.eps {
		net := nn.NewMLP(rand.New(rand.NewSource(p.t.Seed+int64(len(p.xs)))), d, p.hidden, p.hidden, 1)
		net.Train(p.xs, p.ys, 150, 0.01)
		best := opt.RecursiveRandomSearch(func(q []float64) float64 {
			return net.Predict(q)
		}, d, 600, p.rng)
		x = best.X
	} else {
		x = make([]float64, d)
		for i := range x {
			x[i] = p.rng.Float64()
		}
	}
	return []tune.Config{p.space.FromVector(x)}
}

func (p *neuralProposer) Observe(t tune.Trial) {
	p.xs = append(p.xs, t.Config.Vector())
	p.ys = append(p.ys, t.Result.Objective())
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*OtterTune)(nil)
	_ tune.BatchTuner = (*NeuralTuner)(nil)
)
