package ml

import (
	"math"
	"math/rand"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/nn"
	"repro/internal/mathx/opt"
	"repro/internal/mathx/sample"
	"repro/internal/tune"
)

// Ask/tell forms of the ML tuners. OtterTune's offline phase (metric
// pruning, Lasso knob ranking) runs at proposer construction; the initial
// observations are one batch; workload mapping happens once, after the
// batch is observed; GP rounds then propose up to Batch candidates via
// penalized EI over the active knobs. The neural tuner batches its
// initialization and stays one-at-a-time afterwards — each proposal
// retrains the surrogate on everything observed so far.

// otProposer is OtterTune in ask/tell form. Like the iTuned proposer, its
// GP rounds screen a candidate pool over the active knobs with one batched
// ScoreCandidates call and polish the best start with a local simplex
// search; the model persists across rounds, absorbing new observations
// incrementally between hyperparameter re-optimizations.
type otProposer struct {
	t     *OtterTune
	space *tune.Space
	rng   *rand.Rand
	batch int
	sel   *tune.SurrogateSelector

	sessions []tune.SessionRecord
	pruned   []string
	active   []int
	topK     int

	pending []tune.Config
	mapped  bool

	xs, mappedX [][]float64
	ys, mappedY []float64
	observed    map[string]float64
	nObs        float64
	bestX       []float64
	incumbent   float64

	model    gp.Surrogate
	absorbed int // target observations the model has conditioned on
	round    int // GP rounds run
	scores   []float64
}

// screenPool is how many candidate knob settings each GP round scores in
// the batched screening pass before polishing.
const screenPool = 48

// batchPenalty shrinks an acquisition score near sub-vectors already chosen
// this round so a batch spreads out across the active knobs.
func batchPenalty(sub []float64, chosen [][]float64) float64 {
	pen := 1.0
	for _, c := range chosen {
		pen *= 1 - math.Exp(-sqDistSub(sub, c)/(0.15*0.15))
	}
	return pen
}

// embed writes sub into the active knob positions of dst (a copy of base).
func (p *otProposer) embed(dst, base, sub []float64) []float64 {
	copy(dst, base)
	for j, v := range sub {
		dst[p.active[j]] = v
	}
	return dst
}

// ensureModel syncs the GP with the mapped corpus plus observed history:
// a hyperparameter-searched refit on re-optimization rounds, incremental
// appends otherwise. Reports false when fitting failed.
func (p *otProposer) ensureModel() bool {
	every := p.t.ReoptimizeEvery
	if every < 1 {
		every = 1
	}
	reopt := p.model == nil || p.round%every == 0
	p.round++
	if reopt {
		gx := append(append([][]float64(nil), p.mappedX...), p.xs...)
		gy := append(append([]float64(nil), p.mappedY...), p.ys...)
		// The transferred corpus counts toward the tier decision: mapping a
		// thousand-trial repository session pushes the model straight into
		// the sparse or RFF tier instead of an O(n³) exact fit.
		tier := p.sel.TierFor(len(gx), p.space.Dim())
		m := p.sel.New(gp.Matern52, tier, p.t.Seed)
		optimize := len(gx) <= 80 || tier != tune.SurrogateExact
		if err := m.Fit(gx, gy, optimize); err != nil {
			p.model = nil
			return false
		}
		p.model, p.absorbed = m, len(p.xs)
		return true
	}
	for ; p.absorbed < len(p.xs); p.absorbed++ {
		if err := p.model.Append(p.xs[p.absorbed], p.ys[p.absorbed]); err != nil {
			p.model = nil
			return false
		}
	}
	return true
}

// NewProposer implements tune.BatchTuner: the offline phase.
func (t *OtterTune) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))

	var sessions []tune.SessionRecord
	if t.Repo != nil {
		sessions = t.Repo.ForSystem(system(target.Name()))
	}
	keep := t.PrunedMetrics
	if keep <= 0 {
		keep = 6
	}
	pruned := pruneMetrics(sessions, keep, rng)
	t.LastPrunedMetrics = pruned
	ranking := rankKnobs(space, sessions)
	t.LastKnobRanking = ranking
	topK := t.TopKnobs
	if topK <= 0 {
		topK = 8
	}
	if topK > len(ranking) {
		topK = len(ranking)
	}
	active := make([]int, topK)
	for i, n := range ranking[:topK] {
		active[i] = space.IndexOf(n)
	}

	initN := t.InitObs
	if initN <= 0 {
		initN = 5
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 4
	}
	p := &otProposer{
		t: t, space: space, rng: rng, batch: batch,
		sel:      tune.NewSurrogateSelector(t.Surrogate),
		sessions: sessions, pruned: pruned, active: active, topK: topK,
		observed: map[string]float64{}, incumbent: math.Inf(1),
	}
	p.pending = append(p.pending, space.Default())
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

// mapWorkloadOnce borrows the nearest past workload's observations, scaled
// to the target's observed objective level.
func (p *otProposer) mapWorkloadOnce() {
	p.mapped = true
	if len(p.sessions) == 0 || p.nObs == 0 {
		return
	}
	avg := make(map[string]float64, len(p.observed))
	for k, v := range p.observed {
		avg[k] = v / p.nObs
	}
	at := mapWorkload(p.sessions, p.pruned, avg)
	if at < 0 {
		return
	}
	sess := p.sessions[at]
	p.t.LastMappedWorkload = sess.Workload
	if len(sess.ParamNames) != p.space.Dim() {
		return
	}
	var vals []float64
	for _, tr := range sess.Trials {
		vals = append(vals, tr.Time)
	}
	tm, tsd := medianIQR(vals)
	om, osd := medianIQR(p.ys)
	for _, tr := range sess.Trials {
		p.mappedX = append(p.mappedX, tr.Vector)
		p.mappedY = append(p.mappedY, om+(tr.Time-tm)/tsd*osd)
	}
}

func (p *otProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	if !p.mapped {
		p.mapWorkloadOnce()
	}
	if !p.ensureModel() {
		return []tune.Config{p.space.Random(p.rng)}
	}
	model := p.model
	k := p.batch
	if k > n {
		k = n
	}
	base := p.bestX
	// Screen: batch-score the incumbent's active knobs plus a uniform pool
	// of knob settings, each embedded into the incumbent configuration.
	subs := make([][]float64, 0, screenPool+1)
	subs = append(subs, subVector(base, p.active))
	for i := 0; i < screenPool; i++ {
		sub := make([]float64, p.topK)
		for j := range sub {
			sub[j] = p.rng.Float64()
		}
		subs = append(subs, sub)
	}
	fulls := make([][]float64, len(subs))
	for i, sub := range subs {
		fulls[i] = p.embed(make([]float64, len(base)), base, sub)
	}
	p.scores = model.ScoreCandidates(fulls, p.incumbent, p.scores)
	out := make([]tune.Config, 0, k)
	var chosen [][]float64
	xbuf := make([]float64, len(base))
	for i := 0; i < k; i++ {
		bestAt, bestScore := 0, math.Inf(-1)
		for c, sub := range subs {
			if s := p.scores[c] * batchPenalty(sub, chosen); s > bestScore {
				bestAt, bestScore = c, s
			}
		}
		next := opt.NelderMead(func(sub []float64) float64 {
			p.embed(xbuf, base, sub)
			return -model.ExpectedImprovement(xbuf, p.incumbent) * batchPenalty(sub, chosen)
		}, subs[bestAt], 0.15, 50)
		sub := next.X
		if next.F >= 0 { // no positive EI: explore the active knobs
			sub = make([]float64, p.topK)
			for j := range sub {
				sub[j] = p.rng.Float64()
			}
		}
		chosen = append(chosen, sub)
		out = append(out, p.space.FromVector(p.embed(make([]float64, len(base)), base, sub)))
	}
	return out
}

func (p *otProposer) Observe(t tune.Trial) {
	x := t.Config.Vector()
	y := t.Result.Objective()
	p.xs = append(p.xs, x)
	p.ys = append(p.ys, y)
	for k, v := range t.Result.Metrics {
		p.observed[k] += v
	}
	p.nObs++
	if y < p.incumbent {
		p.incumbent, p.bestX = y, x
	}
}

func sqDistSub(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// neuralProposer is the Rodd & Kulkarni tuner in ask/tell form.
type neuralProposer struct {
	t     *NeuralTuner
	space *tune.Space
	rng   *rand.Rand

	pending []tune.Config
	xs      [][]float64
	ys      []float64
	hidden  int
	eps     float64
}

// NewProposer implements tune.BatchTuner.
func (t *NeuralTuner) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	d := space.Dim()
	rng := rand.New(rand.NewSource(t.Seed))
	initN := t.InitObs
	if initN <= 0 {
		initN = 2 * d
		if initN < 6 {
			initN = 6
		}
		if initN > b.Trials/2 && b.Trials >= 4 {
			initN = b.Trials / 2
		}
	}
	hidden := t.Hidden
	if hidden <= 0 {
		hidden = 24
	}
	eps := t.Epsilon
	if eps <= 0 {
		eps = 0.2
	}
	p := &neuralProposer{t: t, space: space, rng: rng, hidden: hidden, eps: eps}
	for _, x := range sample.LatinHypercube(initN, d, rng) {
		p.pending = append(p.pending, space.FromVector(x))
	}
	return p, nil
}

func (p *neuralProposer) Propose(n int) []tune.Config {
	if len(p.pending) > 0 {
		return tune.ProposeFixed(&p.pending, n)
	}
	if n <= 0 {
		return nil
	}
	d := p.space.Dim()
	var x []float64
	if len(p.xs) >= 4 && p.rng.Float64() >= p.eps {
		net := nn.NewMLP(rand.New(rand.NewSource(p.t.Seed+int64(len(p.xs)))), d, p.hidden, p.hidden, 1)
		net.Train(p.xs, p.ys, 150, 0.01)
		best := opt.RecursiveRandomSearch(func(q []float64) float64 {
			return net.Predict(q)
		}, d, 600, p.rng)
		x = best.X
	} else {
		x = make([]float64, d)
		for i := range x {
			x[i] = p.rng.Float64()
		}
	}
	return []tune.Config{p.space.FromVector(x)}
}

func (p *neuralProposer) Observe(t tune.Trial) {
	p.xs = append(p.xs, t.Config.Vector())
	p.ys = append(p.ys, t.Result.Objective())
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*OtterTune)(nil)
	_ tune.BatchTuner = (*NeuralTuner)(nil)
)
