// Package ml implements the survey's fifth category: black-box machine
// learning tuners that treat the system as a whole and learn from observed
// performance.
//
//   - OtterTune (Van Aken et al., SIGMOD 2017): the full pipeline — runtime
//     metric dimensionality reduction (PCA + k-means pruning), knob ranking
//     by Lasso regularization paths, workload mapping against a repository
//     of past tuning sessions, and Gaussian-process recommendation reusing
//     the mapped workload's data.
//   - NeuralTuner (Rodd & Kulkarni, IJCSIS 2010): an MLP response surrogate
//     searched for promising configurations, retrained as observations
//     accumulate.
//
// ML tuners capture arbitrary system dynamics without internals knowledge —
// but they need data: the Table-1 experiment shows the cold-start penalty
// without a repository and the transfer gain with one.
package ml

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mathx/cluster"
	"repro/internal/mathx/lasso"
	"repro/internal/tune"
)

// OtterTune is the repository-driven GP tuner.
type OtterTune struct {
	Seed int64
	// Repo is the corpus of past sessions; nil degrades to cold-start GP.
	Repo *tune.Repository
	// TopKnobs bounds the knobs actively tuned after Lasso ranking
	// (default 8); remaining knobs stay at their defaults.
	TopKnobs int
	// PrunedMetrics is the metric count kept after pruning (default 6).
	PrunedMetrics int
	// InitObs is the number of initial observations on the new target
	// (default 5).
	InitObs int
	// Batch is how many candidates each GP round proposes (default 4);
	// the concurrent engine evaluates them in parallel.
	Batch int
	// ReoptimizeEvery re-selects GP hyperparameters every k-th GP round;
	// in-between rounds condition the persistent model on new observations
	// incrementally (O(n²) bordered-Cholesky appends with frozen
	// hyperparameters). 0 or 1 (the default) refits with hyperparameter
	// search every round.
	ReoptimizeEvery int
	// Surrogate selects the GP surrogate tier and its switch-over
	// thresholds (nil = auto with defaults). The mapped workload's
	// observations count toward the tier decision: a large transferred
	// corpus pushes the model into the sparse or RFF tier immediately.
	Surrogate *tune.SurrogateConfig

	// LastKnobRanking records the most recent Lasso knob ranking.
	LastKnobRanking []string
	// LastPrunedMetrics records the metric names kept by pruning.
	LastPrunedMetrics []string
	// LastMappedWorkload records the repository workload the target was
	// mapped to ("" when no repository).
	LastMappedWorkload string
}

// NewOtterTune returns an OtterTune instance using repo (which may be nil).
func NewOtterTune(seed int64, repo *tune.Repository) *OtterTune {
	return &OtterTune{Seed: seed, Repo: repo, TopKnobs: 8, PrunedMetrics: 6, InitObs: 5}
}

// Name implements tune.Tuner.
func (t *OtterTune) Name() string { return "ml/ottertune" }

// system extracts the repository system key from a target name
// ("dbms/tpch" → "dbms").
func system(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}

// metricNames returns the sorted union of metric keys across sessions.
func metricNames(sessions []tune.SessionRecord) []string {
	set := map[string]struct{}{}
	for _, s := range sessions {
		for _, tr := range s.Trials {
			for k := range tr.Metrics {
				set[k] = struct{}{}
			}
		}
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// pruneMetrics reproduces OtterTune's metric reduction: project the
// (trial × metric) matrix onto its principal components, then k-means the
// metrics in loading space and keep the metric nearest each center.
func pruneMetrics(sessions []tune.SessionRecord, keep int, rng *rand.Rand) []string {
	names := metricNames(sessions)
	if len(names) <= keep {
		return names
	}
	var rows [][]float64
	for _, s := range sessions {
		for _, tr := range s.Trials {
			row := make([]float64, len(names))
			for i, n := range names {
				row[i] = tr.Metrics[n]
			}
			rows = append(rows, row)
		}
	}
	if len(rows) < 4 {
		return names[:keep]
	}
	// Standardize columns so scale does not dominate the PCA.
	for j := range names {
		var mean, sd float64
		for _, r := range rows {
			mean += r[j]
		}
		mean /= float64(len(rows))
		for _, r := range rows {
			d := r[j] - mean
			sd += d * d
		}
		sd = math.Sqrt(sd / float64(len(rows)))
		if sd < 1e-12 {
			sd = 1
		}
		for _, r := range rows {
			r[j] = (r[j] - mean) / sd
		}
	}
	comps, _ := cluster.PCA(rows, int(math.Min(4, float64(len(names)))), 60, rng)
	// Loading vector per metric: its coordinates across components.
	loadings := make([][]float64, len(names))
	for j := range names {
		l := make([]float64, len(comps))
		for c, comp := range comps {
			l[c] = comp[j]
		}
		loadings[j] = l
	}
	km := cluster.KMeans(loadings, keep, 50, rng)
	reps := km.RepresentativeNearestCenter(loadings)
	var out []string
	for _, r := range reps {
		if r >= 0 {
			out = append(out, names[r])
		}
	}
	sort.Strings(out)
	return out
}

// rankKnobs pools (config, objective) pairs across sessions and ranks knobs
// by Lasso path activation order.
func rankKnobs(space *tune.Space, sessions []tune.SessionRecord) []string {
	var xs [][]float64
	var ys []float64
	for _, s := range sessions {
		if len(s.ParamNames) != space.Dim() {
			continue
		}
		// Standardize objective within each session: absolute runtimes are
		// workload-specific, the shape is what transfers.
		var vals []float64
		for _, tr := range s.Trials {
			vals = append(vals, tr.Time)
		}
		mean, sd := meanStd(vals)
		for _, tr := range s.Trials {
			xs = append(xs, tr.Vector)
			ys = append(ys, (tr.Time-mean)/sd)
		}
	}
	names := space.Names()
	if len(xs) < 8 {
		return space.ByImpact()
	}
	order := lasso.PathRank(xs, ys, 12)
	out := make([]string, 0, len(order))
	for _, j := range order {
		out = append(out, names[j])
	}
	return out
}

// medianIQR returns robust location/scale estimates (median, IQR/1.35, the
// normal-consistent robust sd).
func medianIQR(xs []float64) (med, sd float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med = sorted[len(sorted)/2]
	q1 := sorted[len(sorted)/4]
	q3 := sorted[(3*len(sorted))/4]
	sd = (q3 - q1) / 1.35
	if sd < 1e-12 {
		sd = 1
	}
	return med, sd
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	if sd < 1e-12 {
		sd = 1
	}
	return mean, sd
}

// mapWorkload picks the repository session whose metric signature is nearest
// the target's observed signature over the pruned metrics.
func mapWorkload(sessions []tune.SessionRecord, pruned []string, observed map[string]float64) int {
	bestAt, bestD := -1, math.Inf(1)
	for i, s := range sessions {
		sig := sessionSignature(s, pruned)
		var d float64
		for _, m := range pruned {
			// Compare on log scale: metric magnitudes span decades.
			a := math.Log1p(math.Abs(sig[m]))
			b := math.Log1p(math.Abs(observed[m]))
			d += (a - b) * (a - b)
		}
		// Slightly prefer data-rich sessions: more observations transfer
		// a more trustworthy surface.
		d /= math.Log(math.E + float64(len(s.Trials)))
		if d < bestD {
			bestD, bestAt = d, i
		}
	}
	return bestAt
}

func sessionSignature(s tune.SessionRecord, pruned []string) map[string]float64 {
	sig := make(map[string]float64, len(pruned))
	if len(s.Trials) == 0 {
		return sig
	}
	for _, m := range pruned {
		var sum float64
		for _, tr := range s.Trials {
			sum += tr.Metrics[m]
		}
		sig[m] = sum / float64(len(s.Trials))
	}
	return sig
}

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *OtterTune) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

func subVector(x []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

var _ tune.Tuner = (*OtterTune)(nil)
