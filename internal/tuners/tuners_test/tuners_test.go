// Package tuners_test exercises every tuning category end-to-end against the
// simulated systems: budget discipline, improvement over defaults, and each
// approach's characteristic behaviours.
package tuners_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/dist"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tune/store"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/costmodel"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/tuners/rulebased"
	"repro/internal/tuners/simulation"
	"repro/internal/workload"
)

func dbmsTarget(seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), workload.TPCHLike(3), seed)
}

func hadoopTarget(seed int64) *mapreduce.Hadoop {
	return mapreduce.New(cluster.Commodity(8), workload.TeraSort(8), seed)
}

func sparkTarget(seed int64) *spark.Spark {
	return spark.New(cluster.Commodity(8), workload.PageRank(1, 4), seed)
}

// requireImproves runs the tuner and asserts it beats the default by at
// least factor, within budget.
func requireImproves(t *testing.T, tuner tune.Tuner, target tune.Target, budget int, factor float64) *tune.TuningResult {
	t.Helper()
	def := target.Run(target.Space().Default())
	r, err := tuner.Tune(context.Background(), target, tune.Budget{Trials: budget})
	if err != nil {
		t.Fatalf("%s: %v", tuner.Name(), err)
	}
	if len(r.Trials) > budget {
		t.Fatalf("%s: used %d trials over budget %d", tuner.Name(), len(r.Trials), budget)
	}
	best := r.BestResult
	if len(r.Trials) == 0 {
		best = target.Run(r.Best)
	}
	if best.Time*factor > def.Time {
		t.Errorf("%s: best %.1fs does not improve default %.1fs by %.1fx",
			tuner.Name(), best.Time, def.Time, factor)
	}
	return r
}

func TestRuleTunersImprove(t *testing.T) {
	requireImproves(t, rulebased.NewTuner(rulebased.DBMSRules()), dbmsTarget(1), 2, 1.3)
	requireImproves(t, rulebased.NewTuner(rulebased.HadoopRules()), hadoopTarget(2), 2, 3)
	requireImproves(t, rulebased.NewTuner(rulebased.SparkRules()), sparkTarget(3), 2, 3)
}

func TestNavigatorImproves(t *testing.T) {
	requireImproves(t, rulebased.NewNavigator(), dbmsTarget(4), 25, 1.5)
}

func TestCostModelsImprove(t *testing.T) {
	requireImproves(t, costmodel.NewSTMM(), dbmsTarget(5), 2, 1.3)
	requireImproves(t, costmodel.NewStarfish(6), hadoopTarget(6), 2, 3)
	requireImproves(t, costmodel.NewErnest(), sparkTarget(7), 8, 1.5)
}

func TestCostModelsRejectWrongTargets(t *testing.T) {
	if _, err := costmodel.NewStarfish(1).Tune(context.Background(), dbmsTarget(8), tune.Budget{Trials: 2}); err == nil {
		t.Error("starfish should reject non-Hadoop targets")
	}
	if _, err := costmodel.NewErnest().Tune(context.Background(), dbmsTarget(9), tune.Budget{Trials: 8}); err == nil {
		t.Error("ernest should reject non-Spark targets")
	}
}

func TestSimulationTunersImprove(t *testing.T) {
	requireImproves(t, simulation.NewTraceWhatIf(10), dbmsTarget(10), 3, 1.2)
	requireImproves(t, simulation.NewADDM(), dbmsTarget(11), 20, 1.3)
	proxy := mapreduce.New(cluster.Commodity(8), workload.TeraSort(1), 99)
	proxy.NoiseStd = 0.001
	requireImproves(t, simulation.NewScaledProxy(proxy, 12), hadoopTarget(12), 4, 3)
}

func TestExperimentTunersImprove(t *testing.T) {
	requireImproves(t, &experiment.Random{Seed: 13}, dbmsTarget(13), 25, 2)
	requireImproves(t, &experiment.Grid{TopK: 3}, dbmsTarget(14), 25, 1.2)
	requireImproves(t, &experiment.RRS{Seed: 15}, dbmsTarget(15), 25, 2)
	requireImproves(t, experiment.NewSARD(16), dbmsTarget(16), 40, 2)
	requireImproves(t, experiment.NewAdaptiveSampling(17), dbmsTarget(17), 25, 2)
	requireImproves(t, experiment.NewITuned(18), dbmsTarget(18), 25, 2)
}

func TestSARDScreeningRanksEffectiveKnobs(t *testing.T) {
	sard := experiment.NewSARD(19)
	ranking, _, err := sard.Screen(context.Background(), dbmsTarget(19), tune.Budget{Trials: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != dbmsTarget(19).Space().Dim() {
		t.Fatalf("ranking covers %d of %d params", len(ranking), dbmsTarget(19).Space().Dim())
	}
	// The known heavyweight knobs should rank above the known featherweight.
	pos := map[string]int{}
	for i, n := range ranking {
		pos[n] = i
	}
	if pos[dbms.WorkMemMB] > pos[dbms.LogLevel] && pos[dbms.BufferPoolMB] > pos[dbms.LogLevel] {
		t.Errorf("screening ranked log_level above both memory knobs: %v", ranking)
	}
	if len(sard.LastEffects) == 0 {
		t.Error("effects should be recorded")
	}
}

func TestMLTunersImprove(t *testing.T) {
	requireImproves(t, ml.NewOtterTune(20, nil), dbmsTarget(20), 25, 2)
	requireImproves(t, ml.NewNeuralTuner(21), dbmsTarget(21), 25, 2)
}

func TestOtterTuneUsesRepository(t *testing.T) {
	// Build a repository from tpch sessions, then tune mixed.
	repo := &tune.Repository{}
	past := dbms.New(cluster.CommodityNode(), workload.TPCHLike(3), 100)
	it := experiment.NewITuned(100)
	r, err := it.Tune(context.Background(), past, tune.Budget{Trials: 15})
	if err != nil {
		t.Fatal(err)
	}
	repo.AddResult("dbms", "tpch", past.WorkloadFeatures(), r)

	target := dbms.New(cluster.CommodityNode(), workload.MixedDB(2), 101)
	ot := ml.NewOtterTune(101, repo)
	if _, err := ot.Tune(context.Background(), target, tune.Budget{Trials: 15}); err != nil {
		t.Fatal(err)
	}
	if ot.LastMappedWorkload == "" {
		t.Error("workload mapping should have selected a session")
	}
	if len(ot.LastKnobRanking) == 0 || len(ot.LastPrunedMetrics) == 0 {
		t.Error("pipeline stages should record their outputs")
	}
}

func TestAdaptiveTunersRun(t *testing.T) {
	colt := adaptive.NewCOLT(22)
	colt.Runs = 3
	r := requireImproves(t, colt, dbmsTarget(22), 5, 0.5) // adaptive pays online cost
	if len(r.Trials) != 3 {
		t.Errorf("COLT should record one trial per adaptive run, got %d", len(r.Trials))
	}
	// Across runs the online tuner should improve (the last run benefits
	// from the previous run's converged configuration).
	first, last := r.Trials[0].Result.Time, r.Trials[len(r.Trials)-1].Result.Time
	if last > first*1.15 {
		t.Errorf("online runs regressed: %v → %v", first, last)
	}
}

func TestAdaptiveRejectsPlainTargets(t *testing.T) {
	// Hadoop does not implement AdaptiveTarget.
	if _, err := adaptive.NewCOLT(23).Tune(context.Background(), hadoopTarget(23), tune.Budget{Trials: 2}); err == nil {
		t.Error("COLT should reject non-adaptive targets")
	}
	at := &adaptive.AdaptiveTuner{Label: "x", Controller: adaptive.NewMemoryManager()}
	if _, err := at.Tune(context.Background(), hadoopTarget(24), tune.Budget{Trials: 2}); err == nil {
		t.Error("AdaptiveTuner should reject non-adaptive targets")
	}
}

func TestMemoryManagerReducesSpills(t *testing.T) {
	target := dbmsTarget(25)
	res := target.RunAdaptive(target.Space().Default(), adaptive.NewMemoryManager())
	// By the end the manager should have grown work_mem enough that spills
	// fell versus a static default run.
	static := target.Run(target.Space().Default())
	if res.Metrics["spilled_queries"] >= static.Metrics["spilled_queries"] {
		t.Errorf("memory manager should reduce spills: %v vs %v",
			res.Metrics["spilled_queries"], static.Metrics["spilled_queries"])
	}
}

func TestRecommenderWarmStart(t *testing.T) {
	repo := &tune.Repository{}
	past := hadoopTarget(26)
	it := experiment.NewITuned(26)
	r, err := it.Tune(context.Background(), past, tune.Budget{Trials: 15})
	if err != nil {
		t.Fatal(err)
	}
	repo.AddResult("hadoop", "terasort", past.WorkloadFeatures(), r)

	rec := adaptive.NewRecommender(27, repo)
	fresh := hadoopTarget(27)
	rr, err := rec.Tune(context.Background(), fresh, tune.Budget{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	def := fresh.Run(fresh.Space().Default())
	if rr.BestResult.Time >= def.Time {
		t.Errorf("warm start (%v) should beat default (%v)", rr.BestResult.Time, def.Time)
	}
}

func TestSPEXCheckerDetectsAndRepairs(t *testing.T) {
	target := dbmsTarget(28)
	checker := rulebased.DBMSChecker()
	specs := target.Specs()
	bad := target.Space().Default().
		With(dbms.BufferPoolMB, 15000.0).
		With(dbms.WorkMemMB, 1024.0)
	violations := checker.Validate(bad, specs)
	if len(violations) == 0 {
		t.Fatal("checker should flag memory oversubscription")
	}
	repaired := checker.Repair(bad, specs)
	if len(checker.Validate(repaired, specs)) != 0 {
		t.Errorf("repair left violations: %v", checker.Validate(repaired, specs))
	}
	if res := target.Run(repaired); res.Failed {
		t.Errorf("repaired config still fails: %s", res.FailReason)
	}
}

func TestHadoopCheckerConstraints(t *testing.T) {
	checker := rulebased.HadoopChecker()
	target := hadoopTarget(29)
	bad := target.Space().Default().With(mapreduce.IOSortMB, 800.0).With(mapreduce.JVMHeapMB, 300.0)
	if len(checker.Validate(bad, target.Specs())) == 0 {
		t.Error("checker should flag sort buffer exceeding heap")
	}
	repaired := checker.Repair(bad, target.Specs())
	if res := target.Run(repaired); res.Failed {
		t.Errorf("repaired config still fails: %s", res.FailReason)
	}
}

func TestCheckerAndBookLookup(t *testing.T) {
	for _, name := range []string{"dbms/x", "hadoop/x", "spark/x"} {
		if _, err := rulebased.BookFor(name); err != nil {
			t.Errorf("BookFor(%q): %v", name, err)
		}
		if _, err := rulebased.CheckerFor(name); err != nil {
			t.Errorf("CheckerFor(%q): %v", name, err)
		}
	}
	if _, err := rulebased.BookFor("nosuch/x"); err == nil {
		t.Error("unknown system should error")
	}
}

func TestStarfishPredictTracksSimulator(t *testing.T) {
	target := hadoopTarget(30)
	target.NoiseStd = 0.001
	space := target.Space()
	cfg := space.Default().
		With(mapreduce.ReduceTasks, 32).
		With(mapreduce.JVMHeapMB, 1024.0).
		With(mapreduce.IOSortMB, 300.0)
	pred := costmodel.Predict(target.Job(), target.Cluster(), cfg)
	actual := target.Run(cfg).Time
	ratio := pred / actual
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("model prediction %v vs actual %v (ratio %.2f) outside 3x band", pred, actual, ratio)
	}
}

func TestTunersRespectContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tn := range []tune.Tuner{
		experiment.NewITuned(31),
		&experiment.Random{Seed: 31},
		ml.NewNeuralTuner(31),
	} {
		r, err := tn.Tune(ctx, dbmsTarget(31), tune.Budget{Trials: 10})
		if err == nil && len(r.Trials) > 0 {
			t.Errorf("%s: ran %d trials after cancellation", tn.Name(), len(r.Trials))
		}
	}
}

// TestGoldenDeterminismCorpus is the table-driven determinism harness: every
// registered tuner runs on dbms/tpch and spark/pagerank at -parallel 1 and
// -parallel 4, and the session's entire marshaled event stream must be
// byte-identical — the repo-wide guarantee that parallelism never changes
// results, enforced for every tuner in one place instead of ad-hoc per-PR
// checks. Tuners that reject a target (wrong system, no adaptive hooks)
// must reject it identically at both parallelism levels.
func TestGoldenDeterminismCorpus(t *testing.T) {
	targets := []struct {
		system, workload string
		opts             repro.TargetOptions
	}{
		{"dbms", "tpch", repro.TargetOptions{ScaleGB: 2}},
		{"spark", "pagerank", repro.TargetOptions{ScaleGB: 1}},
	}
	stream := func(spec repro.Spec, parallel int) ([]string, string) {
		spec.Parallel = parallel
		eng := repro.NewEngine(repro.EngineOptions{Workers: parallel})
		run, err := repro.StartOn(context.Background(), eng, spec)
		if err != nil {
			return nil, err.Error()
		}
		var events []string
		for ev := range run.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				return nil, "marshal: " + err.Error()
			}
			events = append(events, string(data))
		}
		if _, err := run.Wait(nil); err != nil {
			return events, err.Error()
		}
		return events, ""
	}
	for _, name := range repro.Tuners() {
		for _, tc := range targets {
			t.Run(name+"/"+tc.system, func(t *testing.T) {
				spec := repro.Spec{
					System: tc.system, Workload: tc.workload, Tuner: name,
					Seed: 11, Budget: repro.Budget{Trials: 6}, Target: tc.opts,
				}
				if name == "scaled-proxy" {
					spec.Proxy = &repro.ProxySpec{ScaleGB: 0.4}
				}
				seq, seqErr := stream(spec, 1)
				par, parErr := stream(spec, 4)
				if seqErr != parErr {
					t.Fatalf("errors differ across parallelism:\n  p1: %s\n  p4: %s", seqErr, parErr)
				}
				if seqErr != "" {
					return // rejected identically on both paths: that is the contract
				}
				if len(seq) == 0 {
					t.Fatal("no events streamed")
				}
				if len(seq) != len(par) {
					t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
				}
				for i := range seq {
					if seq[i] != par[i] {
						t.Fatalf("event %d differs across parallelism:\n  p1: %s\n  p4: %s", i, seq[i], par[i])
					}
				}
			})
		}
	}
}

// TestGoldenSurrogateBelowThresholdBitIdentical pins the surrogate tier's
// compatibility guarantee: a session that carries a surrogate config but
// stays below the sparse threshold must produce an event stream
// byte-identical to the same spec with no surrogate config at all — the
// exact tier below threshold IS the historical code path, not a lookalike.
func TestGoldenSurrogateBelowThresholdBitIdentical(t *testing.T) {
	stream := func(spec repro.Spec) []string {
		t.Helper()
		eng := repro.NewEngine(repro.EngineOptions{Workers: spec.Parallel})
		run, err := repro.StartOn(context.Background(), eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		for ev := range run.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, string(data))
		}
		if _, err := run.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	for _, tuner := range []string{"ituned", "ottertune"} {
		t.Run(tuner, func(t *testing.T) {
			base := repro.Spec{
				System: "dbms", Workload: "tpch", Tuner: tuner,
				Seed: 11, Budget: repro.Budget{Trials: 8},
				Target: repro.TargetOptions{ScaleGB: 2}, Parallel: 1,
			}
			withCfg := base
			withCfg.Surrogate = &repro.SurrogateSpec{} // auto, default thresholds
			plain := stream(base)
			configured := stream(withCfg)
			if len(plain) == 0 {
				t.Fatal("no events streamed")
			}
			if len(plain) != len(configured) {
				t.Fatalf("event counts differ: %d vs %d", len(plain), len(configured))
			}
			for i := range plain {
				if plain[i] != configured[i] {
					t.Fatalf("event %d differs with surrogate config present:\n  none: %s\n  auto: %s",
						i, plain[i], configured[i])
				}
			}
		})
	}
}

// TestGoldenSurrogateAboveThresholdDeterministic runs sessions that cross
// into the sparse and RFF tiers (tiny thresholds / forced tier) and requires
// the event stream to stay byte-identical at -parallel 1 vs 4 — the
// determinism contract extends past the exact-GP wall.
func TestGoldenSurrogateAboveThresholdDeterministic(t *testing.T) {
	stream := func(spec repro.Spec, parallel int) []string {
		t.Helper()
		spec.Parallel = parallel
		eng := repro.NewEngine(repro.EngineOptions{Workers: parallel})
		run, err := repro.StartOn(context.Background(), eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		for ev := range run.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, string(data))
		}
		if _, err := run.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	configs := []struct {
		name string
		cfg  *repro.SurrogateSpec
	}{
		{"sparse", &repro.SurrogateSpec{SparseAbove: 8, RFFAbove: 1500, Inducing: 8}},
		{"rff", &repro.SurrogateSpec{Tier: "rff", Features: 64}},
	}
	for _, tuner := range []string{"ituned", "ottertune"} {
		for _, tc := range configs {
			t.Run(tuner+"/"+tc.name, func(t *testing.T) {
				spec := repro.Spec{
					System: "dbms", Workload: "tpch", Tuner: tuner,
					Seed: 11, Budget: repro.Budget{Trials: 20},
					Target:    repro.TargetOptions{ScaleGB: 2},
					Surrogate: tc.cfg,
				}
				seq := stream(spec, 1)
				par := stream(spec, 4)
				if len(seq) == 0 {
					t.Fatal("no events streamed")
				}
				if len(seq) != len(par) {
					t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
				}
				for i := range seq {
					if seq[i] != par[i] {
						t.Fatalf("event %d differs across parallelism:\n  p1: %s\n  p4: %s", i, seq[i], par[i])
					}
				}
			})
		}
	}
}

// TestGoldenDeterminismFidelity extends the corpus to multi-fidelity
// sessions: for each fidelity strategy over representative inner tuners,
// the entire marshaled event stream — TrialStarted fidelities, TrialDone
// results, and crucially the TrialPruned ordering that rung decisions emit
// — must be byte-identical at -parallel 1 vs 4 on dbms/tpch and
// spark/pagerank.
func TestGoldenDeterminismFidelity(t *testing.T) {
	targets := []struct {
		system, workload string
		opts             repro.TargetOptions
	}{
		{"dbms", "tpch", repro.TargetOptions{ScaleGB: 2}},
		{"spark", "pagerank", repro.TargetOptions{ScaleGB: 1}},
	}
	stream := func(spec repro.Spec, parallel int) []string {
		t.Helper()
		spec.Parallel = parallel
		eng := repro.NewEngine(repro.EngineOptions{Workers: parallel})
		run, err := repro.StartOn(context.Background(), eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		var events []string
		for ev := range run.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, string(data))
		}
		if _, err := run.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	for _, strategy := range []string{"hyperband", "halving"} {
		for _, tuner := range []string{"ituned", "random"} {
			for _, tc := range targets {
				t.Run(strategy+"/"+tuner+"/"+tc.system, func(t *testing.T) {
					spec := repro.Spec{
						System: tc.system, Workload: tc.workload, Tuner: tuner,
						Seed: 11, Budget: repro.Budget{Trials: 24}, Target: tc.opts,
						Fidelity: &repro.FidelitySpec{Strategy: strategy},
					}
					seq := stream(spec, 1)
					par := stream(spec, 4)
					if len(seq) == 0 {
						t.Fatal("no events streamed")
					}
					if len(seq) != len(par) {
						t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
					}
					var pruned int
					for i := range seq {
						if seq[i] != par[i] {
							t.Fatalf("event %d differs across parallelism:\n  p1: %s\n  p4: %s", i, seq[i], par[i])
						}
						if strings.Contains(seq[i], `"kind":"trial_pruned"`) {
							pruned++
						}
					}
					if pruned == 0 {
						t.Error("a multi-fidelity session emitted no trial_pruned events")
					}
				})
			}
		}
	}
}

// TestGoldenDeterminismWarmStart extends the corpus to the warm-start path:
// a warm-started session over a persistent repository directory must also
// be byte-identical at any parallelism (seeds are injected in proposal
// order, so the transferred trials batch like any others).
func TestGoldenDeterminismWarmStart(t *testing.T) {
	dir := t.TempDir()
	// Seed the repository with one past session.
	hist := repro.Spec{
		System: "spark", Workload: "kmeans", Tuner: "ituned",
		Seed: 5, Budget: repro.Budget{Trials: 10}, Repository: dir,
	}
	run, err := repro.Start(context.Background(), hist)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(nil); err != nil {
		t.Fatal(err)
	}

	// Freeze the corpus: both comparison runs must transfer from identical
	// history, and a Spec.Repository run would archive itself into the
	// directory between them.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := st.Repository()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if len(repo.Sessions) != 1 {
		t.Fatalf("repository has %d sessions, want the 1 archived by Start", len(repo.Sessions))
	}

	stream := func(parallel int) []string {
		spec := repro.Spec{
			System: "spark", Workload: "pagerank", Tuner: "ituned",
			Seed: 11, Budget: repro.Budget{Trials: 10}, Target: repro.TargetOptions{ScaleGB: 1},
			WarmStart: true, Parallel: parallel,
		}
		job, err := spec.JobWith(repo, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := repro.NewEngine(repro.EngineOptions{Workers: parallel})
		r := eng.Submit(job)
		var events []string
		for ev := range r.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, string(data))
		}
		if _, err := r.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	seq := stream(1)
	par := stream(4)
	if len(seq) == 0 {
		t.Fatal("no events streamed")
	}
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("warm-start event %d differs across parallelism:\n  p1: %s\n  p4: %s", i, seq[i], par[i])
		}
	}
}

// TestGoldenMultiEvaluatorTopology extends the determinism corpus across
// the process boundary: the same spec must produce a byte-identical event
// stream evaluated locally at -parallel 1, fanned out to 4 local workers,
// and leased to a two-evaluator remote fleet (each evaluator rebuilding the
// target from the assignment's sysmodel over real HTTP). The fidelity
// variant additionally pins TrialPruned ordering while rung cancellation is
// aborting superfluous remote leases mid-flight.
func TestGoldenMultiEvaluatorTopology(t *testing.T) {
	newFleet := func(t *testing.T) *dist.Pool {
		t.Helper()
		var urls []string
		for i := 0; i < 2; i++ {
			ev := dist.NewEvaluator(dist.EvaluatorOptions{Workers: 2, HeartbeatEvery: 20 * time.Millisecond})
			srv := httptest.NewServer(ev.Handler())
			t.Cleanup(srv.Close)
			urls = append(urls, srv.URL)
		}
		return dist.NewPool(urls, dist.PoolOptions{RetryBackoff: 5 * time.Millisecond})
	}
	stream := func(t *testing.T, spec repro.Spec, parallel int, pool *dist.Pool) []string {
		t.Helper()
		job, err := spec.Job()
		if err != nil {
			t.Fatal(err)
		}
		job.Parallel = parallel
		if pool != nil {
			job.Remote = pool.Backend(dist.SysModel{
				System: spec.System, Workload: spec.Workload,
				Seed: spec.Seed, Target: spec.Target,
			})
		}
		run := repro.NewEngine(repro.EngineOptions{Workers: parallel}).Submit(job)
		var events []string
		for ev := range run.Events() {
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, string(data))
		}
		if _, err := run.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return events
	}
	for _, name := range []string{"ituned", "random"} {
		for _, fidelity := range []bool{false, true} {
			label := name
			if fidelity {
				label += "/hyperband"
			}
			t.Run(label, func(t *testing.T) {
				spec := repro.Spec{
					System: "dbms", Workload: "tpch", Tuner: name,
					Seed: 11, Budget: repro.Budget{Trials: 8},
					Target: repro.TargetOptions{ScaleGB: 2},
				}
				if fidelity {
					spec.Budget.Trials = 16
					spec.Fidelity = &repro.FidelitySpec{Strategy: "hyperband"}
				}
				local := stream(t, spec, 1, nil)
				par := stream(t, spec, 4, nil)
				fleet := stream(t, spec, 2, newFleet(t))
				if len(local) == 0 {
					t.Fatal("no events streamed")
				}
				if fidelity {
					pruned := 0
					for _, ev := range local {
						if strings.Contains(ev, `"trial_pruned"`) {
							pruned++
						}
					}
					if pruned == 0 {
						t.Fatal("fidelity variant never pruned a trial; rung-cancellation ordering not covered")
					}
				}
				for label, got := range map[string][]string{"parallel-4": par, "fleet": fleet} {
					if len(got) != len(local) {
						t.Fatalf("%s: event counts differ: %d vs %d", label, len(local), len(got))
					}
					for i := range local {
						if local[i] != got[i] {
							t.Fatalf("%s: event %d differs:\n  local: %s\n  other: %s", label, i, local[i], got[i])
						}
					}
				}
			})
		}
	}
}
