package rulebased

import (
	"context"

	"repro/internal/tune"
)

// Navigator reproduces the configuration-navigation idea of Xu et al.
// ("Hey, you have given me too many knobs!"): most parameters should never
// be touched; rank them by declared impact, expose only the top few, and
// walk those one at a time over a handful of candidate values. It is still
// rule-based — the ranking comes from documentation, not measurement — but
// unlike a pure rulebook it spends a small trial budget confirming choices.
type Navigator struct {
	// TopK is how many parameters to navigate (default 5).
	TopK int
	// Levels is how many candidate values to try per parameter (default 4).
	Levels int
}

// NewNavigator returns a Navigator with default settings.
func NewNavigator() *Navigator { return &Navigator{TopK: 5, Levels: 4} }

// Name implements tune.Tuner.
func (n *Navigator) Name() string { return "rules/navigator" }

// Tune implements tune.Tuner via the generic ask/tell adapter: one-at-a-
// time sweeps over the highest-impact parameters, keeping each parameter's
// best value before moving on.
func (n *Navigator) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := n.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, n.Name(), target, b, p)
}

var (
	_ tune.Tuner = (*Navigator)(nil)
	_ tune.Tuner = (*Tuner)(nil)
)
