package rulebased

import (
	"context"

	"repro/internal/tune"
)

// Navigator reproduces the configuration-navigation idea of Xu et al.
// ("Hey, you have given me too many knobs!"): most parameters should never
// be touched; rank them by declared impact, expose only the top few, and
// walk those one at a time over a handful of candidate values. It is still
// rule-based — the ranking comes from documentation, not measurement — but
// unlike a pure rulebook it spends a small trial budget confirming choices.
type Navigator struct {
	// TopK is how many parameters to navigate (default 5).
	TopK int
	// Levels is how many candidate values to try per parameter (default 4).
	Levels int
}

// NewNavigator returns a Navigator with default settings.
func NewNavigator() *Navigator { return &Navigator{TopK: 5, Levels: 4} }

// Name implements tune.Tuner.
func (n *Navigator) Name() string { return "rules/navigator" }

// Tune implements tune.Tuner: one-at-a-time sweeps over the highest-impact
// parameters, keeping each parameter's best value before moving on.
func (n *Navigator) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	topK := n.TopK
	if topK <= 0 {
		topK = 5
	}
	levels := n.Levels
	if levels < 2 {
		levels = 4
	}
	space := target.Space()
	ranked := space.ByImpact()
	if topK > len(ranked) {
		topK = len(ranked)
	}
	s := tune.NewSession(ctx, target, b)
	cur := space.Default()
	if _, err := s.Run(cur); err != nil && err != tune.ErrBudgetExhausted {
		return nil, err
	}
	for _, name := range ranked[:topK] {
		if s.Exhausted() {
			break
		}
		bestCfg, _ := s.Best()
		cur = bestCfg
		// Sweep the parameter across its range in unit-cube coordinates.
		idx := space.IndexOf(name)
		for l := 0; l < levels && !s.Exhausted(); l++ {
			x := cur.Vector()
			x[idx] = (float64(l) + 0.5) / float64(levels)
			if _, err := s.Run(space.FromVector(x)); err != nil {
				if err == tune.ErrBudgetExhausted {
					break
				}
				return nil, err
			}
		}
	}
	return s.Finish(n.Name(), tune.Config{}), nil
}

var (
	_ tune.Tuner = (*Navigator)(nil)
	_ tune.Tuner = (*Tuner)(nil)
)
