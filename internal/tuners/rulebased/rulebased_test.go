package rulebased

import (
	"strings"
	"testing"

	"repro/internal/tune"
)

func ruleSpace() *tune.Space {
	return tune.NewSpace(
		tune.LogFloat("buffer_pool_mb", 64, 16384, 128),
		tune.LogFloat("work_mem_mb", 1, 2048, 4),
		tune.Int("max_parallel_workers", 1, 32, 2),
		tune.Float("random_page_cost", 1, 10, 4),
	)
}

func TestRulebookAppliesOnlyKnownParams(t *testing.T) {
	book := DBMSRules() // names several params not in this reduced space
	specs := map[string]float64{"ram_mb": 8192, "cores": 8}
	features := map[string]float64{"clients": 8, "scan_frac": 0.5}
	cfg := book.Apply(ruleSpace(), specs, features)
	if v := cfg.Float("buffer_pool_mb"); v < 2000 || v > 2100 {
		t.Errorf("buffer rule: %v, want 25%% of 8192", v)
	}
	if cfg.Int("max_parallel_workers") != 8 {
		t.Errorf("workers rule: %d", cfg.Int("max_parallel_workers"))
	}
}

func TestRulebooksDocumentReasons(t *testing.T) {
	for _, book := range []*Rulebook{DBMSRules(), HadoopRules(), SparkRules()} {
		for _, r := range book.Rules {
			if r.Reason == "" {
				t.Errorf("%s rule %q lacks a reason", book.System, r.Param)
			}
			if r.Value == nil {
				t.Errorf("%s rule %q lacks a value function", book.System, r.Param)
			}
		}
	}
}

func TestRangeConstraint(t *testing.T) {
	c := RangeConstraint{Param: "random_page_cost", Lo: 1, Hi: 10}
	space := ruleSpace()
	ok := space.Default().With("random_page_cost", 5.0)
	if msg := c.Check(ok, nil); msg != "" {
		t.Errorf("valid config flagged: %s", msg)
	}
	// The unit-cube representation clamps into range, so Repair on any
	// decodable value is the identity; verify it does not disturb.
	if c.Repair(ok, nil).Distance(ok) != 0 {
		t.Error("repair must not disturb a valid config")
	}
}

func TestRatioConstraint(t *testing.T) {
	space := tune.NewSpace(
		tune.LogFloat("io_sort_mb", 10, 1024, 100),
		tune.LogFloat("jvm_heap_mb", 200, 4096, 512),
	)
	c := RatioConstraint{Param: "io_sort_mb", Other: "jvm_heap_mb", Factor: 0.65}
	bad := space.Default().With("io_sort_mb", 1000.0).With("jvm_heap_mb", 400.0)
	if msg := c.Check(bad, nil); !strings.Contains(msg, "exceeds") {
		t.Errorf("violation not detected: %q", msg)
	}
	fixed := c.Repair(bad, nil)
	if c.Check(fixed, nil) != "" {
		t.Error("repair did not satisfy the ratio")
	}
}

func TestSumSpecConstraint(t *testing.T) {
	space := ruleSpace()
	c := SumSpecConstraint{
		Params:  []string{"buffer_pool_mb", "work_mem_mb"},
		Weights: []float64{1, 32},
		SpecKey: "ram_mb",
		Factor:  0.9,
	}
	specs := map[string]float64{"ram_mb": 8192}
	bad := space.Default().With("buffer_pool_mb", 8000.0).With("work_mem_mb", 512.0)
	if c.Check(bad, specs) == "" {
		t.Fatal("oversubscription not detected")
	}
	fixed := c.Repair(bad, specs)
	if msg := c.Check(fixed, specs); msg != "" {
		t.Errorf("repair insufficient: %s", msg)
	}
	// Missing spec key: constraint is inert, never panics.
	if c.Check(bad, map[string]float64{}) != "" {
		t.Error("missing spec should disable the constraint")
	}
}

func TestNavigatorStopsAtBudget(t *testing.T) {
	// Covered end-to-end in tuners_test; here just the TopK clamp.
	n := NewNavigator()
	if n.TopK != 5 || n.Levels != 4 {
		t.Errorf("defaults = %+v", n)
	}
}
