package rulebased

import (
	"math"

	"repro/internal/tune"
)

// Ask/tell forms of the rule-based tuners. A rulebook is a pure offline
// recommendation with one verification run (falling back to the default
// configuration if the advice crashes the deployment). The navigator's
// one-at-a-time sweeps batch naturally: all levels of one parameter derive
// from the same incumbent, so each sweep is one parallel batch.

// NewProposer implements tune.BatchTuner.
func (t *Tuner) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	var specs, features map[string]float64
	if sp, ok := target.(tune.SpecProvider); ok {
		specs = sp.Specs()
	}
	if d, ok := target.(tune.Describer); ok {
		features = d.WorkloadFeatures()
	}
	rec := t.Book.Apply(target.Space(), specs, features)
	// The advice crashed this deployment: retreat to defaults.
	repair := func(tune.Config) tune.Config { return target.Space().Default() }
	return tune.NewRecommendProposer(rec, repair), nil
}

// navProposer sweeps the top-impact parameters one at a time, each sweep
// proposed as one batch around the incumbent so far.
type navProposer struct {
	space  *tune.Space
	ranked []string
	levels int

	pending []tune.Config
	started bool
	next    int // index into ranked of the next parameter to sweep

	best    tune.Config
	bestObj float64
}

// NewProposer implements tune.BatchTuner.
func (n *Navigator) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	topK := n.TopK
	if topK <= 0 {
		topK = 5
	}
	levels := n.Levels
	if levels < 2 {
		levels = 4
	}
	space := target.Space()
	ranked := space.ByImpact()
	if topK > len(ranked) {
		topK = len(ranked)
	}
	return &navProposer{
		space:   space,
		ranked:  ranked[:topK],
		levels:  levels,
		bestObj: math.Inf(1),
	}, nil
}

func (p *navProposer) Propose(n int) []tune.Config {
	if len(p.pending) == 0 {
		switch {
		case !p.started:
			p.started = true
			p.pending = []tune.Config{p.space.Default()}
		case p.next < len(p.ranked):
			// Sweep the parameter across its range in unit-cube coordinates,
			// all other parameters held at the incumbent.
			idx := p.space.IndexOf(p.ranked[p.next])
			p.next++
			base := p.best
			if !base.Valid() {
				base = p.space.Default()
			}
			for l := 0; l < p.levels; l++ {
				x := base.Vector()
				x[idx] = (float64(l) + 0.5) / float64(p.levels)
				p.pending = append(p.pending, p.space.FromVector(x))
			}
		}
	}
	return tune.ProposeFixed(&p.pending, n)
}

func (p *navProposer) Observe(t tune.Trial) {
	if obj := t.Result.Objective(); obj < p.bestObj {
		p.bestObj, p.best = obj, t.Config
	}
}

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*Tuner)(nil)
	_ tune.BatchTuner = (*Navigator)(nil)
)
