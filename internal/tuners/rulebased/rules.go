// Package rulebased implements the first category of the survey: tuning by
// encoded expert experience. It provides
//
//   - best-practice rulebooks for the DBMS, Hadoop, and Spark simulators
//     (the "set the buffer pool to 25% of RAM" class of advice),
//   - a SPEX-style constraint system (Xu et al., SOSP 2013) that infers
//     validity constraints over parameters and detects/repairs error-prone
//     configurations before they reach the system, and
//   - a Tianyin-style configuration navigator (Xu et al., ESEC/FSE 2015)
//     that ranks parameters by declared impact and walks users through only
//     the few that matter.
//
// Rule-based tuning needs no runs and no models — its strength — but it
// encodes static judgement, so it leaves workload-specific performance on
// the table; the Table-1 experiment quantifies exactly that.
package rulebased

import (
	"context"
	"fmt"

	"repro/internal/tune"
)

// Rule sets one parameter from deployment specs and workload features.
type Rule struct {
	// Param is the parameter this rule sets.
	Param string
	// Reason documents the expert advice the rule encodes.
	Reason string
	// Value computes the native value from specs and workload features
	// (either may be nil when the target cannot provide them).
	Value func(specs, features map[string]float64) float64
}

// Rulebook is an ordered list of rules for one system.
type Rulebook struct {
	System string
	Rules  []Rule
}

// Apply returns the target-default configuration with every applicable rule
// applied. Rules naming parameters absent from the space are skipped, so a
// rulebook survives space evolution.
func (rb *Rulebook) Apply(space *tune.Space, specs, features map[string]float64) tune.Config {
	cfg := space.Default()
	for _, r := range rb.Rules {
		if _, ok := space.Param(r.Param); !ok {
			continue
		}
		cfg = cfg.WithNative(r.Param, r.Value(specs, features))
	}
	return cfg
}

// Tuner applies a rulebook to a target. It implements tune.Tuner; with a
// nonzero budget it spends one trial verifying the recommendation (and falls
// back to the default configuration if the recommendation fails outright).
type Tuner struct {
	Book *Rulebook
}

// NewTuner returns a rule-based tuner over book.
func NewTuner(book *Rulebook) *Tuner { return &Tuner{Book: book} }

// Name implements tune.Tuner.
func (t *Tuner) Name() string { return "rules/" + t.Book.System }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *Tuner) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

// clampMin returns v, at least lo.
func clampMin(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

// DBMSRules returns the classic DBA advice for the DBMS simulator.
func DBMSRules() *Rulebook {
	return &Rulebook{System: "dbms", Rules: []Rule{
		{
			Param:  "buffer_pool_mb",
			Reason: "give the buffer pool 25% of RAM (PostgreSQL wiki guidance)",
			Value:  func(s, _ map[string]float64) float64 { return 0.25 * s["ram_mb"] },
		},
		{
			Param:  "work_mem_mb",
			Reason: "size work_mem so peak concurrent sorts fit in another 25% of RAM",
			Value: func(s, f map[string]float64) float64 {
				conc := clampMin(f["clients"], 4)
				return clampMin(0.25*s["ram_mb"]/(conc*2), 4)
			},
		},
		{
			Param:  "max_parallel_workers",
			Reason: "allow parallel workers up to the core count",
			Value:  func(s, _ map[string]float64) float64 { return s["cores"] },
		},
		{
			Param:  "effective_io_concurrency",
			Reason: "raise I/O queue depth on capable storage",
			Value:  func(_, _ map[string]float64) float64 { return 16 },
		},
		{
			Param:  "checkpoint_interval_s",
			Reason: "space checkpoints out to damp full-page-write amplification",
			Value:  func(_, _ map[string]float64) float64 { return 900 },
		},
		{
			Param:  "wal_buffer_mb",
			Reason: "16 MB WAL buffer suffices for group commit",
			Value:  func(_, _ map[string]float64) float64 { return 16 },
		},
		{
			Param:  "max_connections",
			Reason: "cap connections near offered concurrency",
			Value: func(_, f map[string]float64) float64 {
				return clampMin(2*f["clients"], 32)
			},
		},
		{
			Param:  "random_page_cost",
			Reason: "lower random_page_cost when random I/O is fast",
			Value:  func(_, _ map[string]float64) float64 { return 2.5 },
		},
		{
			Param:  "stats_target",
			Reason: "richer optimizer statistics for analytical mixes",
			Value: func(_, f map[string]float64) float64 {
				if f["scan_frac"]+f["join_frac"] > 0.4 {
					return 400
				}
				return 100
			},
		},
	}}
}

// HadoopRules returns the Hadoop best practices Pavlo-era studies applied:
// parallel reducers, a larger sort buffer inside a larger heap, compression,
// and slot counts matched to cores.
func HadoopRules() *Rulebook {
	return &Rulebook{System: "hadoop", Rules: []Rule{
		{
			Param:  "mapred_reduce_tasks",
			Reason: "0.95 × reduce slots in the cluster (Hadoop tuning guide)",
			Value: func(s, _ map[string]float64) float64 {
				return clampMin(0.95*s["nodes"]*s["cores"]/2, 1)
			},
		},
		{
			Param:  "io_sort_mb",
			Reason: "sort buffer ~40% of task heap",
			Value:  func(_, _ map[string]float64) float64 { return 300 },
		},
		{
			Param:  "jvm_heap_mb",
			Reason: "grow task heap so the sort buffer fits comfortably",
			Value:  func(_, _ map[string]float64) float64 { return 1024 },
		},
		{
			Param:  "io_sort_factor",
			Reason: "merge wide to avoid extra passes",
			Value:  func(_, _ map[string]float64) float64 { return 64 },
		},
		{
			Param:  "map_output_compression",
			Reason: "snappy on map output: cheap CPU for large shuffle savings",
			Value:  func(_, _ map[string]float64) float64 { return 1 }, // choice index: snappy
		},
		{
			Param:  "use_combiner",
			Reason: "enable the combiner when the job aggregates",
			Value: func(_, f map[string]float64) float64 {
				if f["combiner_use"] > 0.1 {
					return 1
				}
				return 0
			},
		},
		{
			Param:  "map_slots_per_node",
			Reason: "one map slot per core, minus one for the daemons",
			Value:  func(s, _ map[string]float64) float64 { return clampMin(s["cores"]-1, 1) },
		},
		{
			Param:  "reduce_slots_per_node",
			Reason: "half the cores as reduce slots",
			Value:  func(s, _ map[string]float64) float64 { return clampMin(s["cores"]/2, 1) },
		},
		{
			Param:  "jvm_reuse",
			Reason: "reuse JVMs to amortize startup",
			Value:  func(_, _ map[string]float64) float64 { return 1 },
		},
		{
			Param:  "split_size_mb",
			Reason: "128 MB splits balance startup cost against waves",
			Value:  func(_, _ map[string]float64) float64 { return 128 },
		},
		{
			Param:  "reduce_slowstart",
			Reason: "start reducers after most maps finish on a dedicated cluster",
			Value:  func(_, _ map[string]float64) float64 { return 0.6 },
		},
	}}
}

// SparkRules returns the Spark tuning-guide advice.
func SparkRules() *Rulebook {
	return &Rulebook{System: "spark", Rules: []Rule{
		{
			Param:  "spark_num_executors",
			Reason: "fill the cluster: one executor per 4–5 cores per node",
			Value: func(s, _ map[string]float64) float64 {
				perNode := clampMin(s["cores"]/4, 1)
				return s["nodes"] * perNode
			},
		},
		{
			Param:  "spark_executor_cores",
			Reason: "4–5 cores per executor avoids HDFS client contention",
			Value:  func(s, _ map[string]float64) float64 { return clampMin(minf(4, s["cores"]), 1) },
		},
		{
			Param:  "spark_executor_memory_mb",
			Reason: "split node RAM across colocated executors, ~10% headroom",
			Value: func(s, _ map[string]float64) float64 {
				perNode := clampMin(s["cores"]/4, 1)
				return 0.85 * s["ram_mb"] / perNode
			},
		},
		{
			Param:  "spark_serializer",
			Reason: "always use Kryo (Spark tuning guide's first advice)",
			Value:  func(_, _ map[string]float64) float64 { return 1 }, // kryo
		},
		{
			Param:  "spark_sql_shuffle_partitions",
			Reason: "2–3 tasks per available core",
			Value: func(s, _ map[string]float64) float64 {
				return clampMin(2.5*s["nodes"]*s["cores"], 8)
			},
		},
		{
			Param:  "spark_memory_fraction",
			Reason: "leave the default unified fraction alone",
			Value:  func(_, _ map[string]float64) float64 { return 0.6 },
		},
		{
			Param:  "spark_rdd_compress",
			Reason: "compress cached RDDs for iterative jobs with big working sets",
			Value: func(_, f map[string]float64) float64 {
				if f["iterations"] > 0 && f["cache_gb"] > 1 {
					return 1
				}
				return 0
			},
		},
		{
			Param:  "spark_storage_level",
			Reason: "spill cached partitions to disk rather than recompute",
			Value: func(_, f map[string]float64) float64 {
				if f["iterations"] > 0 {
					return 1 // memory_and_disk
				}
				return 0
			},
		},
		{
			Param:  "spark_speculation",
			Reason: "speculate on multi-tenant or skewed clusters",
			Value:  func(_, _ map[string]float64) float64 { return 1 },
		},
	}}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// BookFor returns the rulebook matching a target name prefix, or an error.
func BookFor(targetName string) (*Rulebook, error) {
	switch {
	case hasPrefix(targetName, "dbms/"):
		return DBMSRules(), nil
	case hasPrefix(targetName, "hadoop/"):
		return HadoopRules(), nil
	case hasPrefix(targetName, "spark/"):
		return SparkRules(), nil
	}
	return nil, fmt.Errorf("rulebased: no rulebook for target %q", targetName)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
