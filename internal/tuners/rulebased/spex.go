package rulebased

import (
	"fmt"

	"repro/internal/tune"
)

// Constraint is a validity predicate over a configuration, in the spirit of
// SPEX's inferred configuration constraints: range limits, cross-parameter
// orderings, and resource-sum budgets. Violations mark configurations that
// crash or cripple the system before any run is spent on them.
type Constraint interface {
	// Check returns a violation description, or "" if cfg satisfies the
	// constraint. specs supplies deployment facts for resource budgets.
	Check(cfg tune.Config, specs map[string]float64) string
	// Repair returns cfg adjusted to satisfy the constraint where possible.
	Repair(cfg tune.Config, specs map[string]float64) tune.Config
}

// RangeConstraint requires lo ≤ param ≤ hi (native units).
type RangeConstraint struct {
	Param  string
	Lo, Hi float64
}

// Check implements Constraint.
func (c RangeConstraint) Check(cfg tune.Config, _ map[string]float64) string {
	v := cfg.Native(c.Param)
	if v < c.Lo || v > c.Hi {
		return fmt.Sprintf("%s=%.4g outside valid range [%.4g, %.4g]", c.Param, v, c.Lo, c.Hi)
	}
	return ""
}

// Repair implements Constraint.
func (c RangeConstraint) Repair(cfg tune.Config, _ map[string]float64) tune.Config {
	v := cfg.Native(c.Param)
	if v < c.Lo {
		return cfg.WithNative(c.Param, c.Lo)
	}
	if v > c.Hi {
		return cfg.WithNative(c.Param, c.Hi)
	}
	return cfg
}

// RatioConstraint requires param ≤ factor × other (both native).
type RatioConstraint struct {
	Param  string
	Other  string
	Factor float64
}

// Check implements Constraint.
func (c RatioConstraint) Check(cfg tune.Config, _ map[string]float64) string {
	v, o := cfg.Native(c.Param), cfg.Native(c.Other)
	if v > c.Factor*o {
		return fmt.Sprintf("%s=%.4g exceeds %.2f×%s=%.4g", c.Param, v, c.Factor, c.Other, c.Factor*o)
	}
	return ""
}

// Repair implements Constraint.
func (c RatioConstraint) Repair(cfg tune.Config, _ map[string]float64) tune.Config {
	v, o := cfg.Native(c.Param), cfg.Native(c.Other)
	if v > c.Factor*o {
		return cfg.WithNative(c.Param, c.Factor*o)
	}
	return cfg
}

// SumSpecConstraint requires Σ weight_i × param_i ≤ factor × specs[SpecKey].
type SumSpecConstraint struct {
	Params  []string
	Weights []float64
	SpecKey string
	Factor  float64
}

// Check implements Constraint.
func (c SumSpecConstraint) Check(cfg tune.Config, specs map[string]float64) string {
	budget := c.Factor * specs[c.SpecKey]
	if budget == 0 {
		return ""
	}
	var sum float64
	for i, p := range c.Params {
		w := 1.0
		if i < len(c.Weights) {
			w = c.Weights[i]
		}
		sum += w * cfg.Native(p)
	}
	if sum > budget {
		return fmt.Sprintf("memory demand %.0f exceeds %.0f (%.0f%% of %s)", sum, budget, c.Factor*100, c.SpecKey)
	}
	return ""
}

// Repair implements Constraint: parameters are scaled down proportionally.
func (c SumSpecConstraint) Repair(cfg tune.Config, specs map[string]float64) tune.Config {
	budget := c.Factor * specs[c.SpecKey]
	if budget == 0 {
		return cfg
	}
	var sum float64
	for i, p := range c.Params {
		w := 1.0
		if i < len(c.Weights) {
			w = c.Weights[i]
		}
		sum += w * cfg.Native(p)
	}
	if sum <= budget {
		return cfg
	}
	// Scale slightly under budget so floating-point re-validation passes.
	scale := budget / sum * 0.995
	for _, p := range c.Params {
		cfg = cfg.WithNative(p, cfg.Native(p)*scale)
	}
	return cfg
}

// Checker is a SPEX-style configuration validator for one system.
type Checker struct {
	System      string
	Constraints []Constraint
}

// Validate returns all violation messages for cfg.
func (ch *Checker) Validate(cfg tune.Config, specs map[string]float64) []string {
	var out []string
	for _, c := range ch.Constraints {
		if msg := c.Check(cfg, specs); msg != "" {
			out = append(out, msg)
		}
	}
	return out
}

// Repair applies every constraint's repair in order.
func (ch *Checker) Repair(cfg tune.Config, specs map[string]float64) tune.Config {
	for _, c := range ch.Constraints {
		cfg = c.Repair(cfg, specs)
	}
	return cfg
}

// DBMSChecker returns the inferred constraints of the DBMS simulator: the
// exact conditions under which it degrades into swapping or fails.
func DBMSChecker() *Checker {
	return &Checker{System: "dbms", Constraints: []Constraint{
		SumSpecConstraint{
			Params:  []string{"buffer_pool_mb", "work_mem_mb", "wal_buffer_mb"},
			Weights: []float64{1, 32, 1}, // work_mem multiplies by plausible concurrency
			SpecKey: "ram_mb",
			Factor:  0.9,
		},
		RangeConstraint{Param: "random_page_cost", Lo: 1, Hi: 10},
	}}
}

// HadoopChecker returns Hadoop's crash constraints: the sort buffer must fit
// the heap and slot heaps must fit node RAM.
func HadoopChecker() *Checker {
	return &Checker{System: "hadoop", Constraints: []Constraint{
		RatioConstraint{Param: "io_sort_mb", Other: "jvm_heap_mb", Factor: 0.65},
		SumSpecConstraint{
			Params:  []string{"jvm_heap_mb"},
			Weights: []float64{16}, // conservative slot-count bound
			SpecKey: "ram_mb",
			Factor:  0.9,
		},
	}}
}

// SparkChecker returns Spark's placement constraints.
func SparkChecker() *Checker {
	return &Checker{System: "spark", Constraints: []Constraint{
		SumSpecConstraint{
			Params:  []string{"spark_executor_memory_mb"},
			Weights: []float64{1},
			SpecKey: "ram_mb",
			Factor:  0.9,
		},
	}}
}

// CheckerFor returns the checker for a target name prefix.
func CheckerFor(targetName string) (*Checker, error) {
	switch {
	case hasPrefix(targetName, "dbms/"):
		return DBMSChecker(), nil
	case hasPrefix(targetName, "hadoop/"):
		return HadoopChecker(), nil
	case hasPrefix(targetName, "spark/"):
		return SparkChecker(), nil
	}
	return nil, fmt.Errorf("rulebased: no checker for target %q", targetName)
}
