package simulation

import (
	"math/rand"

	"repro/internal/mathx/opt"
	"repro/internal/sysmodel/trace"
	"repro/internal/tune"
)

// Ask/tell forms of the simulation tuners. TraceWhatIf proposes its
// instrumented probe runs as one batch, rebuilds the resource trace from
// the last probe's counters, searches the replay model offline, and
// proposes the winner for verification. ScaledProxy searches its replica at
// construction (proxy executions cost no budget) and proposes the top
// candidates as one verification batch. ADDM stays sequential: every
// diagnose-remedy step needs the metrics of the run before it.

// traceProposer is TraceWhatIf in ask/tell form.
type traceProposer struct {
	t     *TraceWhatIf
	space *tune.Space
	specs map[string]float64

	pending    []tune.Config
	probesLeft int
	captured   *trace.Trace
	searched   bool
	rec        tune.Config
}

// NewProposer implements tune.BatchTuner.
func (t *TraceWhatIf) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	specs := map[string]float64{}
	if sp, ok := target.(tune.SpecProvider); ok {
		specs = sp.Specs()
	}
	probes := t.ProbeRuns
	if probes < 1 {
		probes = 1
	}
	p := &traceProposer{t: t, space: target.Space(), specs: specs, probesLeft: probes}
	probe := p.space.Default()
	for i := 0; i < probes; i++ {
		p.pending = append(p.pending, probe)
	}
	return p, nil
}

// ensureSearch searches the replay model once a trace has been captured.
func (p *traceProposer) ensureSearch() {
	if p.searched || p.captured == nil {
		return
	}
	p.searched = true
	rng := rand.New(rand.NewSource(p.t.Seed + 99))
	budget := p.t.SearchBudget
	if budget <= 0 {
		budget = 2000
	}
	best := opt.RecursiveRandomSearch(func(x []float64) float64 {
		cfg := p.space.FromVector(x)
		res := ResourcesFor(cfg, p.specs)
		return trace.Replay(p.captured, res)
	}, p.space.Dim(), budget, rng)
	p.rec = p.space.FromVector(best.X)
}

func (p *traceProposer) Propose(n int) []tune.Config {
	if len(p.pending) == 0 && p.probesLeft == 0 && !p.searched {
		p.ensureSearch()
		if p.rec.Valid() {
			p.pending = append(p.pending, p.rec)
		}
	}
	return tune.ProposeFixed(&p.pending, n)
}

func (p *traceProposer) Observe(t tune.Trial) {
	if p.probesLeft == 0 {
		return // the verification run of the recommendation
	}
	p.probesLeft--
	// TraceFromMetrics recovers cache-independent demand from the observed
	// hit ratio, so replay can re-apply any hypothetical cache size.
	p.captured = TraceFromMetrics(t.Result.Metrics, p.specs)
}

// Recommend implements tune.Recommender (invalid until a probe ran).
func (p *traceProposer) Recommend() tune.Config {
	p.ensureSearch()
	return p.rec
}

// proxyProposer is ScaledProxy in ask/tell form.
type proxyProposer struct {
	pending []tune.Config
	rec     tune.Config
}

// NewProposer implements tune.BatchTuner: the proxy search is the offline
// phase — simulated replica executions cost no trial budget.
func (t *ScaledProxy) NewProposer(target tune.Target, b tune.Budget) (tune.Proposer, error) {
	space := target.Space()
	rng := rand.New(rand.NewSource(t.Seed + 7))
	budget := t.SearchBudget
	if budget <= 0 {
		budget = 400
	}
	verify := t.Verify
	if verify <= 0 {
		verify = 3
	}
	// Keep the best few distinct proxy candidates.
	type cand struct {
		x []float64
		f float64
	}
	var top []cand
	consider := func(x []float64, f float64) {
		for i, c := range top {
			if distance(c.x, x) < 0.05 {
				if f < c.f {
					top[i] = cand{append([]float64(nil), x...), f}
				}
				return
			}
		}
		top = append(top, cand{append([]float64(nil), x...), f})
		// Insertion sort by f; trim.
		for i := len(top) - 1; i > 0 && top[i].f < top[i-1].f; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > verify {
			top = top[:verify]
		}
	}
	opt.RecursiveRandomSearch(func(x []float64) float64 {
		res := t.Proxy.Run(space.FromVector(x))
		f := res.Objective()
		consider(x, f)
		return f
	}, space.Dim(), budget, rng)

	p := &proxyProposer{}
	for _, c := range top {
		p.pending = append(p.pending, space.FromVector(c.x))
	}
	if len(p.pending) > 0 {
		p.rec = p.pending[0]
	}
	return p, nil
}

func (p *proxyProposer) Propose(n int) []tune.Config { return tune.ProposeFixed(&p.pending, n) }

func (p *proxyProposer) Observe(tune.Trial) {}

// Recommend implements tune.Recommender.
func (p *proxyProposer) Recommend() tune.Config { return p.rec }

// Interface conformance checks.
var (
	_ tune.BatchTuner = (*TraceWhatIf)(nil)
	_ tune.BatchTuner = (*ScaledProxy)(nil)
)
