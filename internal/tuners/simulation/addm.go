package simulation

import (
	"context"
	"sort"

	"repro/internal/tune"
)

// ADDM reproduces Oracle's diagnostic monitor: each iteration runs the
// system once, attributes the elapsed time to wait components from the run's
// metrics (a miniature DB-time DAG), picks the dominant component, and
// applies its targeted remedy. Diagnosis is cheap and explainable — the
// strength the paper credits to the approach — but each remedy is a local
// rule, so convergence stalls once no single component dominates.
type ADDM struct{}

// NewADDM returns an ADDM tuner.
func NewADDM() *ADDM { return &ADDM{} }

// Name implements tune.Tuner.
func (t *ADDM) Name() string { return "simulation/addm" }

// finding is one diagnosed bottleneck with its remedy.
type finding struct {
	Component string
	Seconds   float64
	Apply     func(cfg tune.Config) tune.Config
}

// diagnose builds the ranked findings list from run metrics — the ADDM
// "top findings" report.
func diagnose(space *tune.Space, m map[string]float64) []finding {
	has := func(p string) bool { _, ok := space.Param(p); return ok }
	scale := func(p string, f float64) func(tune.Config) tune.Config {
		return func(cfg tune.Config) tune.Config {
			if !has(p) {
				return cfg
			}
			return cfg.WithNative(p, cfg.Native(p)*f)
		}
	}
	var fs []finding
	ioWait := m["io_time_s"]
	cpuWait := m["cpu_time_s"]
	lockWait := m["lock_wait_s"]
	commit := m["commit_stall_s"]
	swap := (m["swap_factor"] - 1) * (ioWait + cpuWait)
	ckpt := m["checkpoint_io_mbps"] // proxy

	if swap > 0 {
		fs = append(fs, finding{"memory over-subscription (swapping)", swap, func(cfg tune.Config) tune.Config {
			cfg = scale("buffer_pool_mb", 0.6)(cfg)
			return scale("work_mem_mb", 0.5)(cfg)
		}})
	}
	if ioWait > 0 {
		if m["temp_io_mb"] > 0.2*(m["seq_read_mb"]+m["rand_read_mb"]+1) {
			fs = append(fs, finding{"temp spill I/O (work memory too small)",
				ioWait * 0.5, scale("work_mem_mb", 2.5)})
		}
		if m["buffer_hit_ratio"] < 0.9 {
			fs = append(fs, finding{"buffer cache misses",
				ioWait * (1 - m["buffer_hit_ratio"]), scale("buffer_pool_mb", 2.0)})
		}
		if m["rand_read_mb"] > m["seq_read_mb"] {
			fs = append(fs, finding{"random I/O bound", ioWait * 0.3, func(cfg tune.Config) tune.Config {
				cfg = scale("effective_io_concurrency", 2)(cfg)
				if has("random_page_cost") {
					cfg = cfg.WithNative("random_page_cost", cfg.Native("random_page_cost")*1.5)
				}
				return cfg
			}})
		}
	}
	if lockWait > 0.05*(cpuWait+ioWait+1) {
		fs = append(fs, finding{"lock contention", lockWait, func(cfg tune.Config) tune.Config {
			cfg = scale("deadlock_timeout_ms", 0.4)(cfg)
			return scale("max_connections", 0.7)(cfg)
		}})
	}
	if commit > 0 {
		fs = append(fs, finding{"commit stalls (WAL buffer)", commit, scale("wal_buffer_mb", 4)})
	}
	if ckpt > 5 {
		fs = append(fs, finding{"checkpoint interference", ckpt * 0.1, scale("checkpoint_interval_s", 2)})
	}
	if cpuWait > ioWait*2 {
		fs = append(fs, finding{"CPU bound", cpuWait * 0.3, func(cfg tune.Config) tune.Config {
			cfg = scale("max_parallel_workers", 2)(cfg)
			if has("compression") && cfg.Bool("compression") {
				cfg = cfg.WithNative("compression", 0)
			}
			return cfg
		}})
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Seconds > fs[j].Seconds })
	return fs
}

// Tune implements tune.Tuner: iterative run → diagnose → remedy. A remedy
// that regresses performance is rolled back and the next finding is tried.
func (t *ADDM) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	space := target.Space()
	s := tune.NewSession(ctx, target, b)
	cur := space.Default()
	res, err := s.Run(cur)
	if err != nil {
		if err == tune.ErrBudgetExhausted {
			return s.Finish(t.Name(), tune.Config{}), nil
		}
		return nil, err
	}
	curTime := res.Objective()
	skip := 0 // findings to skip after a regression
	for !s.Exhausted() {
		fs := diagnose(space, res.Metrics)
		if len(fs) == 0 || skip >= len(fs) {
			break
		}
		cand := fs[skip].Apply(cur)
		if cand.Distance(cur) < 1e-9 {
			skip++
			continue
		}
		candRes, err := s.Run(cand)
		if err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
		if candRes.Objective() < curTime {
			cur, res, curTime = cand, candRes, candRes.Objective()
			skip = 0
		} else {
			skip++
		}
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

var _ tune.Tuner = (*ADDM)(nil)
