package simulation

import (
	"context"
	"testing"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/sysmodel/trace"
	"repro/internal/tune"
	"repro/internal/workload"
)

func testTarget(seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), workload.TPCHLike(2), seed)
}

func TestTraceFromMetricsRecoversDemand(t *testing.T) {
	m := map[string]float64{
		"buffer_hit_ratio":   0.5,
		"seq_read_mb":        100,
		"rand_read_mb":       10,
		"cpu_seconds":        20,
		"active_connections": 4,
	}
	tr := TraceFromMetrics(m, map[string]float64{"clock_ghz": 2})
	if len(tr.Ops) != 1 {
		t.Fatalf("trace has %d ops", len(tr.Ops))
	}
	op := tr.Ops[0]
	// At a 50% hit ratio, observed misses are half the full demand.
	if op.SeqReadMB < 199 || op.SeqReadMB > 201 {
		t.Errorf("seq demand %v, want ≈200", op.SeqReadMB)
	}
	if op.RandReadMB < 19.9 || op.RandReadMB > 20.1 {
		t.Errorf("rand demand %v, want ≈20", op.RandReadMB)
	}
	if tr.Concurrency != 4 {
		t.Errorf("concurrency %v, want 4", tr.Concurrency)
	}
	// A saturated hit ratio must not produce infinite demand.
	m["buffer_hit_ratio"] = 1.2
	if d := TraceFromMetrics(m, nil).Ops[0].SeqReadMB; d <= 0 || d > 1e7 {
		t.Errorf("saturated hit ratio produced demand %v", d)
	}
}

func TestReplayRespondsToResources(t *testing.T) {
	m := map[string]float64{
		"buffer_hit_ratio": 0.5, "seq_read_mb": 200, "rand_read_mb": 40,
		"cpu_seconds": 10, "active_connections": 2,
	}
	specs := map[string]float64{"cores": 4, "clock_ghz": 2, "disk_mbps": 100, "ram_mb": 8192}
	tr := TraceFromMetrics(m, specs)
	base := trace.Replay(tr, trace.Resources{
		Cores: 4, ClockGHz: 2, SeqMBps: 100, RandMBps: 10, WriteMBps: 80,
		CacheMB: 256, CacheExponent: 0.7, WorkMemMB: 4,
	})
	bigger := trace.Replay(tr, trace.Resources{
		Cores: 4, ClockGHz: 2, SeqMBps: 100, RandMBps: 10, WriteMBps: 80,
		CacheMB: 4096, CacheExponent: 0.7, WorkMemMB: 4,
	})
	if !(bigger < base) {
		t.Errorf("a larger cache should replay faster: %v vs %v", bigger, base)
	}
	faster := trace.Replay(tr, trace.Resources{
		Cores: 4, ClockGHz: 2, SeqMBps: 400, RandMBps: 40, WriteMBps: 320,
		CacheMB: 256, CacheExponent: 0.7, WorkMemMB: 4,
	})
	if !(faster < base) {
		t.Errorf("faster disks should replay faster: %v vs %v", faster, base)
	}
}

func TestTraceWhatIfProposerFlow(t *testing.T) {
	target := testTarget(9)
	tw := NewTraceWhatIf(9)
	p, err := tw.NewProposer(target, tune.Budget{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	probes := p.Propose(3)
	if len(probes) != 1 {
		t.Fatalf("expected 1 probe, got %d", len(probes))
	}
	if probes[0].String() != target.Space().Default().String() {
		t.Fatal("probe should run the default configuration")
	}
	res := target.Run(probes[0])
	p.Observe(tune.Trial{N: 1, Config: probes[0], Result: res})
	recs := p.Propose(3)
	if len(recs) != 1 {
		t.Fatalf("expected 1 recommendation, got %d", len(recs))
	}
	if recs[0].String() == probes[0].String() {
		t.Error("recommendation should move off the default")
	}
	if r, ok := p.(tune.Recommender); !ok || !r.Recommend().Valid() {
		t.Error("trace proposer should recommend after capturing")
	}
}

func TestTraceWhatIfTuneReplayGuidedImprovement(t *testing.T) {
	target := testTarget(10)
	def := target.Run(target.Space().Default())
	r, err := NewTraceWhatIf(10).Tune(context.Background(), testTarget(11), tune.Budget{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) < 2 {
		t.Fatalf("expected probe + verification trials, got %d", len(r.Trials))
	}
	if r.BestResult.Time >= def.Time {
		t.Errorf("replay-guided tuning did not improve: %v vs default %v", r.BestResult.Time, def.Time)
	}
}

func TestScaledProxyProposerVerifiesTopCandidates(t *testing.T) {
	proxy := testTarget(12)
	proxy.NoiseStd = 0.001
	sp := NewScaledProxy(proxy, 12)
	p, err := sp.NewProposer(testTarget(13), tune.Budget{Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	cands := p.Propose(10)
	if len(cands) == 0 || len(cands) > 3 {
		t.Fatalf("expected 1..3 verification candidates, got %d", len(cands))
	}
	if r, ok := p.(tune.Recommender); !ok || !r.Recommend().Valid() {
		t.Error("proxy proposer should carry a recommendation")
	}
	if more := p.Propose(10); len(more) != 0 {
		t.Errorf("exhausted proxy proposer proposed %d more", len(more))
	}
}
