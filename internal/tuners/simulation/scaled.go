package simulation

import (
	"context"
	"math"

	"repro/internal/tune"
)

// ScaledProxy is the second classic simulation-based methodology: search a
// scaled-down replica of the system (smaller input, noise-free simulation —
// an MRSim/MRPerf-style stand-in) and carry the winning configurations to
// the full-scale system for verification. Proxy executions are simulations,
// so they cost no trial budget; only the verification runs do. The
// methodology inherits the category's weakness — effects that only appear at
// scale (extra task waves, shuffle saturation, memory pressure) are
// invisible at proxy scale.
type ScaledProxy struct {
	// Proxy is the scaled-down replica sharing the target's space.
	Proxy tune.Target
	// SearchBudget is the number of proxy evaluations (default 400).
	SearchBudget int
	// Verify is how many top proxy candidates to verify at full scale
	// (default 3).
	Verify int
	Seed   int64
}

// NewScaledProxy returns a scaled-proxy tuner over the given replica.
func NewScaledProxy(proxy tune.Target, seed int64) *ScaledProxy {
	return &ScaledProxy{Proxy: proxy, SearchBudget: 400, Verify: 3, Seed: seed}
}

// Name implements tune.Tuner.
func (t *ScaledProxy) Name() string { return "simulation/scaled-proxy" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *ScaledProxy) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

func distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

var _ tune.Tuner = (*ScaledProxy)(nil)
