package simulation

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/mathx/opt"
	"repro/internal/tune"
)

// ScaledProxy is the second classic simulation-based methodology: search a
// scaled-down replica of the system (smaller input, noise-free simulation —
// an MRSim/MRPerf-style stand-in) and carry the winning configurations to
// the full-scale system for verification. Proxy executions are simulations,
// so they cost no trial budget; only the verification runs do. The
// methodology inherits the category's weakness — effects that only appear at
// scale (extra task waves, shuffle saturation, memory pressure) are
// invisible at proxy scale.
type ScaledProxy struct {
	// Proxy is the scaled-down replica sharing the target's space.
	Proxy tune.Target
	// SearchBudget is the number of proxy evaluations (default 400).
	SearchBudget int
	// Verify is how many top proxy candidates to verify at full scale
	// (default 3).
	Verify int
	Seed   int64
}

// NewScaledProxy returns a scaled-proxy tuner over the given replica.
func NewScaledProxy(proxy tune.Target, seed int64) *ScaledProxy {
	return &ScaledProxy{Proxy: proxy, SearchBudget: 400, Verify: 3, Seed: seed}
}

// Name implements tune.Tuner.
func (t *ScaledProxy) Name() string { return "simulation/scaled-proxy" }

// Tune implements tune.Tuner.
func (t *ScaledProxy) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	space := target.Space()
	rng := rand.New(rand.NewSource(t.Seed + 7))
	budget := t.SearchBudget
	if budget <= 0 {
		budget = 400
	}
	// Keep the best few distinct proxy candidates.
	type cand struct {
		x []float64
		f float64
	}
	verify := t.Verify
	if verify <= 0 {
		verify = 3
	}
	var top []cand
	consider := func(x []float64, f float64) {
		for i, c := range top {
			if distance(c.x, x) < 0.05 {
				if f < c.f {
					top[i] = cand{append([]float64(nil), x...), f}
				}
				return
			}
		}
		top = append(top, cand{append([]float64(nil), x...), f})
		// Insertion sort by f; trim.
		for i := len(top) - 1; i > 0 && top[i].f < top[i-1].f; i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
		if len(top) > verify {
			top = top[:verify]
		}
	}
	opt.RecursiveRandomSearch(func(x []float64) float64 {
		res := t.Proxy.Run(space.FromVector(x))
		f := res.Objective()
		consider(x, f)
		return f
	}, space.Dim(), budget, rng)

	s := tune.NewSession(ctx, target, b)
	for _, c := range top {
		if s.Exhausted() {
			break
		}
		if _, err := s.Run(space.FromVector(c.x)); err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
	}
	return s.Finish(t.Name(), tune.Config{}), nil
}

func distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

var _ tune.Tuner = (*ScaledProxy)(nil)
