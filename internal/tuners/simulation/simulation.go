// Package simulation implements the survey's third category: performance
// prediction by simulating the system rather than modeling it with closed
// formulas or running it repeatedly.
//
//   - TraceWhatIf reproduces Narayanan et al. (MASCOTS 2005): capture a
//     resource-demand trace from one instrumented run, then replay it under
//     hypothetical resource assignments (cache sizes, device speeds,
//     concurrency) to predict runtimes for unseen configurations; search the
//     replay model for a recommendation.
//   - ADDM reproduces Oracle's Automatic Database Diagnostic Monitor (Dias
//     et al., CIDR 2005): attribute observed time to wait components (CPU,
//     I/O, locks, commit stalls, swapping), identify the top bottleneck, and
//     apply a targeted reconfiguration rule; iterate run → diagnose → adjust.
//
// Simulation-based approaches are accurate about the dynamics they simulate
// and cheap compared to experiment-driven search, but blind to anything the
// trace or wait model does not capture — the Table-1 experiment makes that
// concrete.
package simulation

import (
	"context"
	"math"

	"repro/internal/sysmodel/trace"
	"repro/internal/tune"
)

// TraceWhatIf is the trace-driven what-if tuner. It applies to targets that
// expose resource metrics compatible with the DBMS simulator (cpu_seconds,
// seq_read_mb, rand_read_mb, temp_io_mb) and hardware specs.
type TraceWhatIf struct {
	// SearchBudget is the number of replay evaluations (default 2000).
	SearchBudget int
	// Seed drives the model search.
	Seed int64
	// ProbeRuns is how many instrumented runs to capture (default 1).
	ProbeRuns int
}

// NewTraceWhatIf returns a trace-based what-if tuner with defaults.
func NewTraceWhatIf(seed int64) *TraceWhatIf {
	return &TraceWhatIf{SearchBudget: 2000, Seed: seed, ProbeRuns: 1}
}

// Name implements tune.Tuner.
func (t *TraceWhatIf) Name() string { return "simulation/trace-whatif" }

// Tune implements tune.Tuner via the generic ask/tell adapter.
func (t *TraceWhatIf) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	p, err := t.NewProposer(target, b)
	if err != nil {
		return nil, err
	}
	return tune.DriveProposer(ctx, t.Name(), target, b, p)
}

// TraceFromMetrics reconstructs a resource trace from one run's counters.
func TraceFromMetrics(m, specs map[string]float64) *trace.Trace {
	hit := m["buffer_hit_ratio"]
	if hit >= 1 {
		hit = 0.99
	}
	// Observed misses → full demand.
	seqDemand := m["seq_read_mb"] / (1 - hit + 1e-9)
	randDemand := m["rand_read_mb"] / (1 - hit + 1e-9)
	return &trace.Trace{
		Ops: []trace.Op{{
			CPUSeconds: m["cpu_seconds"] * math.Max(specs["clock_ghz"], 1),
			SeqReadMB:  seqDemand,
			RandReadMB: randDemand,
			WriteMB:    m["wal_mb"],
			TempMB:     m["temp_io_mb"],
			// The capture ran at the default 4 MB work_mem; spills came
			// from operators roughly a tenth of the cacheable set.
			OperatorMB:       math.Max(seqDemand*0.1, 16),
			CaptureWorkMemMB: 4,
			FixedSeconds:     m["lock_wait_s"]/math.Max(m["active_connections"], 1) + m["commit_stall_s"],
			CacheableMB:      seqDemand + randDemand,
			Parallel:         true,
		}},
		Concurrency: math.Max(m["active_connections"], 1),
	}
}

// ResourcesFor derives the hypothetical resource assignment a configuration
// implies on the given hardware.
func ResourcesFor(cfg tune.Config, specs map[string]float64) trace.Resources {
	cores := specs["cores"]
	if cores == 0 {
		cores = 4
	}
	clock := specs["clock_ghz"]
	if clock == 0 {
		clock = 2
	}
	disk := specs["disk_mbps"]
	if disk == 0 {
		disk = 100
	}
	r := trace.Resources{
		Cores:         cores,
		ClockGHz:      clock,
		SeqMBps:       disk,
		RandMBps:      disk / 10,
		WriteMBps:     disk * 0.8,
		CacheExponent: 0.7,
	}
	if _, ok := cfg.Space().Param("buffer_pool_mb"); ok {
		r.CacheMB = cfg.Float("buffer_pool_mb")
	}
	if _, ok := cfg.Space().Param("effective_io_concurrency"); ok {
		ioc := float64(cfg.Int("effective_io_concurrency"))
		r.RandMBps = math.Min(disk, disk/10*math.Sqrt(math.Min(ioc, 32)))
	}
	if _, ok := cfg.Space().Param("max_parallel_workers"); ok {
		r.Cores = math.Min(cores, math.Max(1, float64(cfg.Int("max_parallel_workers"))))
	}
	if _, ok := cfg.Space().Param("work_mem_mb"); ok {
		r.WorkMemMB = cfg.Float("work_mem_mb")
	}
	// Memory over-subscription is visible to the simulator too: penalize
	// infeasible cache sizes so the search avoids them.
	ram := specs["ram_mb"]
	if ram > 0 && r.CacheMB > 0.9*ram {
		r.SeqMBps /= 8
		r.RandMBps /= 8
	}
	return r
}

var _ tune.Tuner = (*TraceWhatIf)(nil)
