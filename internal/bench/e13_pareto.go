package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// Pareto measures multi-objective tuning: latency vs dollar cost on the
// DBMS, whose cost model prices the provisioned footprint (memory,
// connection slots) rather than scaling with elapsed time — so the two
// objectives genuinely conflict. Single-objective iTuned optimizes latency
// alone; the multi-objective sweep (tune.MultiObjectiveTuner) fans the same
// tuner across scalarization weights from pure-latency to pure-cost. Both
// sessions track the Pareto front over their trials (Scenario.Pareto), so
// the comparison is front quality: normalized hypervolume over the union of
// both fronts (tune.NormalizedHypervolume), and front breadth (cost spread).
//
// The claim reproduced: a latency-only search piles its trials onto the
// fast-but-expensive corner, so the front it incidentally uncovers covers a
// sliver of the trade-off; the weighted sweep maps it, dominating strictly
// more of objective space for the same trial budget.
func Pareto(o Options) *Table {
	t := &Table{
		Title: "E13 (pareto): latency-vs-cost multi-objective tuning (dbms/tpch)",
		Columns: []string{
			"approach", "trials", "front size", "best latency",
			"cheapest front point", "cost spread", "hypervolume", "hv gain",
		},
	}
	b := o.budget()
	// Mapping a two-dimensional front needs coverage a single-objective
	// budget does not: with K=4 sub-searches each weight gets only a quarter
	// of the trials, and below ~15 per sub the design phase never hands off
	// to the model. 60 trials is the smallest budget where every corner of
	// the trade-off gets a model-guided search.
	if b.Trials < 60 {
		b.Trials = 60
	}
	scale := o.scaleGB(3, 2)

	single := experiment.NewITuned(o.Seed)
	subs := make([]tune.BatchTuner, len(tune.DefaultParetoWeights))
	for i := range subs {
		// One differently seeded sub-search per weight, mirroring the spec
		// layer's wiring.
		subs[i] = experiment.NewITuned(o.Seed + int64(i))
	}
	multi, err := tune.MultiObjectiveTuner(subs, tune.DefaultParetoWeights)
	if err != nil {
		panic(fmt.Sprintf("bench: building multi-objective tuner: %v", err))
	}
	variants := []struct {
		approach string
		tuner    tune.Tuner
	}{
		{"iTuned (latency only)", single},
		{"iTuned × weights (multi-objective)", multi},
	}
	eng := o.engine()
	runs := make([]*engine.Run, len(variants))
	for i, v := range variants {
		runs[i] = eng.Submit(engine.Job{
			Name:   v.approach,
			Tuner:  v.tuner,
			Target: DBMSTarget(workload.TPCHLike(scale), o.Seed),
			Budget: b,
			Pareto: true, // both sessions track their fronts
		})
	}
	results := make([]*tune.TuningResult, len(runs))
	for i, r := range runs {
		res, err := r.Wait(context.Background())
		if err != nil {
			panic(fmt.Sprintf("bench: pareto session %s failed: %v", variants[i].approach, err))
		}
		results[i] = res
	}

	// Both fronts scored on the unit square spanned by their union, so the
	// hypervolumes are comparable and not drowned by outlier trials.
	hvs := tune.NormalizedHypervolume(results[0].Front, results[1].Front)

	var baseHV float64
	for i, res := range results {
		front := res.Front
		hv := hvs[i]
		minCost, maxCost := frontCostRange(front)
		gain := "—"
		if i == 0 {
			baseHV = hv
		} else if baseHV > 0 {
			gain = fmt.Sprintf("%.0f%%", 100*(hv-baseHV)/baseHV)
		}
		t.AddRow(variants[i].approach,
			fmt.Sprintf("%d", len(res.Trials)),
			fmt.Sprintf("%d", len(front)),
			fmtSeconds(res.BestResult.Time),
			fmt.Sprintf("$%.4f", minCost),
			fmt.Sprintf("$%.4f", maxCost-minCost),
			fmt.Sprintf("%.4f", hv),
			gain)
	}
	t.Note("budget %d trials each at seed %d; weights %v (cost weight per sub-search); hypervolume normalized over the union of both fronts",
		b.Trials, o.Seed, tune.DefaultParetoWeights)
	t.Note("cost = flat provisioned-footprint dollars (base + memory + connection slots), independent of elapsed time; results identical at any -parallel")
	return t
}

// frontCostRange returns the cheapest and dearest cost on the front.
func frontCostRange(front []tune.Trial) (min, max float64) {
	for i, tr := range front {
		c := tr.Result.Cost
		if i == 0 || c < min {
			min = c
		}
		if i == 0 || c > max {
			max = c
		}
	}
	return min, max
}
