package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable regeneration of one paper artifact.
type Experiment struct {
	Name  string
	Doc   string
	Run   func(Options) *Table
	Paper string // the table/claim in the paper this regenerates
}

var registry = map[string]Experiment{
	"motivation": {
		Name: "motivation", Paper: "§1 motivating claims",
		Doc: "misconfiguration degradation and tuning headroom across systems",
		Run: Motivation,
	},
	"table1": {
		Name: "table1", Paper: "Table 1",
		Doc: "six tuning categories compared quantitatively on three systems",
		Run: Table1,
	},
	"table2": {
		Name: "table2", Paper: "Table 2",
		Doc: "eleven DBMS tuning approaches reproduced and measured",
		Run: Table2,
	},
	"hadoopgap": {
		Name: "hadoopgap", Paper: "§2.3 (3.1–6.5× claim)",
		Doc: "Hadoop vs parallel DB on grep/aggregation/join; tuning closes the gap",
		Run: HadoopGap,
	},
	"sparkparams": {
		Name: "sparkparams", Paper: "§2.4 (~30 of ~200 claim)",
		Doc: "Plackett–Burman screening of the full Spark parameter surface",
		Run: SparkParams,
	},
	"heterogeneity": {
		Name: "heterogeneity", Paper: "§2.5 open challenge 1",
		Doc: "configuration transfer from homogeneous to heterogeneous clusters",
		Run: Heterogeneity,
	},
	"cloud": {
		Name: "cloud", Paper: "§2.5 open challenge 2",
		Doc: "tuning under multi-tenant noise; cost-aware provisioning",
		Run: Cloud,
	},
	"realtime": {
		Name: "realtime", Paper: "§2.5 open challenge 3",
		Doc: "streaming micro-batch latency: static vs adaptive configurations",
		Run: Realtime,
	},
	"transfer": {
		Name: "transfer", Paper: "§2.5 repository reuse (OtterTune lesson)",
		Doc: "cold vs warm start from the persistent repository on an unseen workload",
		Run: Transfer,
	},
	"fidelity": {
		Name: "fidelity", Paper: "§2.5 experiment cost (multi-fidelity allocation)",
		Doc: "Hyperband/successive-halving vs full-fidelity tuning: incumbent quality vs evaluation cost",
		Run: Fidelity,
	},
	"surrogate": {
		Name: "surrogate", Paper: "§2.5 model scalability (surrogate cost past the exact-GP wall)",
		Doc: "exact vs sparse-inducing vs random-Fourier-feature surrogates: fit/score cost and posterior agreement",
		Run: Surrogate,
	},
	"drift": {
		Name: "drift", Paper: "§2.5 workload drift (dynamic workloads challenge)",
		Doc: "mid-session oltp→olap shift: static tuning vs windowed drift detection with session re-anchoring",
		Run: Drift,
	},
	"pareto": {
		Name: "pareto", Paper: "§2.5 multi-objective tuning (cost-aware provisioning)",
		Doc: "latency-vs-cost Pareto fronts: single-objective search vs scalarization-weight sweep",
		Run: Pareto,
	},
	"guardrail": {
		Name: "guardrail", Paper: "§2.5 safe exploration (production tuning constraint)",
		Doc: "objective guardrail: unscreened exploration vs GP-screened proposals, violations vs incumbent quality",
		Run: Guardrail,
	},
}

// Experiments lists registered experiment names, sorted.
func Experiments() []Experiment {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Experiment, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Run executes the named experiment.
func Run(name string, o Options) (*Table, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have: %v)", name, names())
	}
	return e.Run(o), nil
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
