package bench

import (
	"context"
	"fmt"

	"repro/internal/sysmodel/cluster"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// Cloud probes the paper's second open challenge (§2.5): decision making in
// cloud settings. Part A measures how multi-tenant interference degrades a
// tuner's result quality (the same budget buys less signal when every run is
// noisy). Part B does joint provisioning + tuning: pick the cluster size and
// the configuration that minimize dollar cost subject to a deadline —
// the cluster-sizing problem Unravel/Tempo-style systems face.
func Cloud(o Options) *Table {
	t := &Table{
		Title:   "E7 (§2.5-2): cloud — multi-tenant noise and cost-aware provisioning",
		Columns: []string{"scenario", "value"},
	}
	ctx := context.Background()
	gb := o.scaleGB(30, 3)
	b := o.budget()

	// --- Part A: tuning quality under tenant noise ------------------------
	for _, tenant := range []struct {
		label        string
		load, jitter float64
	}{
		{"dedicated cluster", 0, 0},
		{"moderate tenants (30% ±20%)", 0.3, 0.2},
		{"heavy tenants (60% ±25%)", 0.6, 0.25},
	} {
		cl := cluster.Commodity(16).MultiTenant(tenant.load, tenant.jitter)
		target := HadoopTargetOn(cl, workload.TeraSort(gb), o.Seed+81)
		def := DefaultTime(target, 5)
		it := experiment.NewITuned(o.Seed + 82)
		r, err := it.Tune(ctx, target, b)
		if err != nil {
			t.AddRow("tuning under "+tenant.label, "error")
			continue
		}
		// Score the chosen config by re-running it (fresh noise draws).
		chosen := averageRun(target, r.Best, 5)
		t.AddRow("tuning under "+tenant.label,
			fmt.Sprintf("default %s → tuned %s (%s)", fmtSeconds(def), fmtSeconds(chosen),
				fmtSpeedup(speedup(def, chosen))))
	}

	// --- Part B: joint cluster sizing + tuning under a deadline ------------
	deadline := 600.0
	if o.Fast {
		deadline = 400.0
	}
	sizes := []int{4, 8, 16, 32}
	bestCost, bestSize, bestTime := -1.0, 0, 0.0
	for _, n := range sizes {
		cl := cluster.Commodity(n)
		target := HadoopTargetOn(cl, workload.TeraSort(gb), o.Seed+83+int64(n))
		it := experiment.NewITuned(o.Seed + 84 + int64(n))
		r, err := it.Tune(ctx, target, tune.Budget{Trials: b.Trials / 2})
		if err != nil {
			continue
		}
		time := r.BestResult.Time
		cost := cl.DollarCost(time)
		label := fmt.Sprintf("%d nodes: %s, $%.3f/run", n, fmtSeconds(time), cost)
		if time > deadline {
			label += " (misses deadline)"
		} else if bestCost < 0 || cost < bestCost {
			bestCost, bestSize, bestTime = cost, n, time
		}
		t.AddRow(fmt.Sprintf("provisioning candidate (%d nodes)", n), label)
	}
	if bestSize > 0 {
		t.AddRow("cost-optimal choice",
			fmt.Sprintf("%d nodes at $%.3f/run (%s, deadline %s)",
				bestSize, bestCost, fmtSeconds(bestTime), fmtSeconds(deadline)))
	}
	t.Note("part A: identical tuner and budget; only tenant interference varies")
	t.Note("part B: terasort %0.0f GB, deadline %s, price $0.40/node-hour", gb, fmtSeconds(deadline))
	return t
}
