// Package bench is the experiment harness: it defines one runnable
// experiment per table and quantitative claim of the paper (see DESIGN.md
// §3), renders results as aligned ASCII tables or CSV, and provides the
// shared infrastructure — reference (best-known) configurations, synthetic
// tuning repositories, standard deployments — the experiments need.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintf(w, "=== %s ===\n", t.Title)
	fmt.Fprintln(w, line(t.Columns))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCSV writes the table in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("bench: writing csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
