package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mathx/stat"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/rulebased"
	"repro/internal/workload"
)

// SparkParams regenerates the §2.4 claim: "Spark performance is controlled
// by over 200 parameters from which about 30 can have a significant impact
// on job performance." Following how that observation is established in the
// Spark-tuning literature, every parameter is swept one-at-a-time around a
// sane engineering baseline on three workloads that exercise different
// subsystems (shuffle-heavy terasort, cache-heavy pagerank, latency-bound
// streaming); a parameter is significant when any workload detects it. The
// per-workload threshold self-calibrates from the observed range
// distribution (most parameters are null), guarded by replicate noise and a
// practical floor. The discovered set is scored against the simulator's
// ground-truth effective/inert labeling.
func SparkParams(o Options) *Table {
	t := &Table{
		Title:   "E5 (§2.4): screening Spark's ~200-parameter surface",
		Columns: []string{"quantity", "value"},
	}
	cl := cluster.Commodity(16)
	levels, reps := 5, 3
	if o.Fast {
		levels, reps = 3, 1
	}

	jobs := []*workload.SparkJob{
		workload.TeraSortSpark(o.scaleGB(20, 2)),
		workload.PageRank(o.scaleGB(4, 1), pagerankIters(o)),
		workload.StreamingAgg(o.scaleGB(1, 0.3)*1024, 6, 10),
	}

	significantUnion := map[string]bool{}
	type eff struct {
		name   string
		effect float64
		inert  bool
	}
	var globalEffects []eff
	totalRuns := 0
	var space *tune.Space
	for wi, job := range jobs {
		target := spark.NewFull(cl, job, o.Seed+60+int64(wi))
		// Screening happens on a quiesced benchmark cluster: tighter
		// run-to-run noise than production.
		target.NoiseStd = 0.02
		space = target.Space()
		d := space.Dim()

		// Knob effects depend on the operating point: around a sane
		// engineering baseline (the rulebook config) the big knobs are
		// already right-sized, while near memory cliffs the spill/buffer
		// knobs wake up. Screen around the rulebook config plus a randomly
		// drawn viable configuration per workload and take the union.
		rulesBase := rulebased.SparkRules().Apply(space, target.Specs(), target.WorkloadFeatures())
		rng := newRand(o.Seed + 65 + int64(wi))
		randBase := rulesBase
		for tries := 0; tries < 20; tries++ {
			cand := space.Random(rng)
			if !target.Run(cand).Failed {
				randBase = cand
				totalRuns += tries + 1
				break
			}
		}
		if wi == 0 {
			params := space.Params()
			globalEffects = make([]eff, d)
			for j := 0; j < d; j++ {
				globalEffects[j] = eff{params[j].Name, 0, params[j].Inert}
			}
		}
		for bi, base := range []tune.Config{rulesBase, randBase} {
			defReps := 10
			if o.Fast {
				defReps = 5
			}
			var defTimes []float64
			for i := 0; i < defReps; i++ {
				defTimes = append(defTimes, target.Run(base).Objective())
			}
			defMean := stat.Mean(defTimes)
			noise := stat.Std(defTimes)
			totalRuns += defReps

			params := space.Params()
			baseVec := base.Vector()
			ranges := make([]float64, d)
			for j := 0; j < d; j++ {
				var means []float64
				for l := 0; l < levels; l++ {
					x := append([]float64(nil), baseVec...)
					x[j] = (float64(l) + 0.5) / float64(levels)
					var sum float64
					for r := 0; r < reps; r++ {
						sum += target.Run(space.FromVector(x)).Objective()
						totalRuns++
					}
					means = append(means, sum/float64(reps))
				}
				ranges[j] = stat.Max(means) - stat.Min(means)
			}

			// Threshold: most parameters are null, so an upper quantile of
			// the observed ranges calibrates the null spread (Lenth-style),
			// guarded by the replicate noise and a 1%-of-baseline floor.
			threshold := 2.5 * stat.Quantile(ranges, 0.75)
			if v := 5 * noise / math.Sqrt(float64(reps)); v > threshold {
				threshold = v
			}
			if floor := 0.01 * defMean; floor > threshold {
				threshold = floor
			}

			count := 0
			for j := 0; j < d; j++ {
				effect := ranges[j]
				if effect > globalEffects[j].effect {
					globalEffects[j].effect = effect
				}
				if effect > threshold {
					significantUnion[params[j].Name] = true
					count++
				}
			}
			baseLabel := "rules"
			if bi == 1 {
				baseLabel = "random"
			}
			t.AddRow(fmt.Sprintf("significant on %s (%s base)", job.Name, baseLabel),
				fmt.Sprintf("%d (threshold %s, baseline %s)", count, fmtSeconds(threshold), fmtSeconds(defMean)))
		}
	}

	truePos, falsePos := 0, 0
	for name := range significantUnion {
		p, _ := space.Param(name)
		if p.Inert {
			falsePos++
		} else {
			truePos++
		}
	}
	effective := space.EffectiveDim()

	t.AddRow("parameters in space", fmt.Sprintf("%d", space.Dim()))
	t.AddRow("truly effective (ground truth)", fmt.Sprintf("%d", effective))
	t.AddRow("sweep runs (all workloads)", fmt.Sprintf("%d", totalRuns))
	t.AddRow("significant (union)", fmt.Sprintf("%d", len(significantUnion)))
	t.AddRow("…of which truly effective", fmt.Sprintf("%d", truePos))
	t.AddRow("…false positives (inert)", fmt.Sprintf("%d", falsePos))

	sort.SliceStable(globalEffects, func(a, b int) bool { return globalEffects[a].effect > globalEffects[b].effect })
	top := 10
	if top > len(globalEffects) {
		top = len(globalEffects)
	}
	for i := 0; i < top; i++ {
		t.AddRow(fmt.Sprintf("top effect #%d", i+1),
			fmt.Sprintf("%s (Δ %s)", globalEffects[i].name, fmtSeconds(globalEffects[i].effect)))
	}
	t.Note("paper claim: ~30 of ~200 Spark parameters significantly affect performance")
	return t
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
