package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mathx/gp"
	"repro/internal/mathx/stat"
	"repro/internal/workload"
)

// Surrogate measures the scalable-surrogate tier: the exact GP against the
// FITC sparse inducing-point GP and the random-Fourier-feature surrogate on
// identical DBMS training sets, at sizes straddling the exact-GP wall. Three
// numbers per row: wall time to fit, wall time to EI-score a candidate batch
// (the per-round planning cost), and agreement with the exact GP's posterior
// mean on a held-out grid — the accuracy each cheaper tier trades for its
// asymptotic win (exact O(n³) fit vs sparse O(nm²) vs RFF O(nD²)).
//
// Timings are min-of-3 wall clock so the table is stable on a loaded host;
// agreement is fully deterministic (fixed seed, fixed hyperparameters).
func Surrogate(o Options) *Table {
	t := &Table{
		Title: "E11 (surrogate): exact vs sparse-inducing vs RFF surrogate cost and agreement (dbms/tpch)",
		Columns: []string{
			"surrogate", "n", "fit", "score 256 candidates",
			"agreement (rmse/σy vs exact)", "fit speedup",
		},
	}
	ns := []int{200, 600}
	if o.Fast {
		ns = []int{120, 240}
	}
	target := DBMSTarget(workload.TPCHLike(o.scaleGB(3, 2)), o.Seed)
	space := target.Space()
	rnd := rand.New(rand.NewSource(o.Seed))

	// One shared training pool, sliced per row so every tier at a given n
	// sees the same data.
	nmax := ns[len(ns)-1]
	xs := make([][]float64, nmax)
	ys := make([]float64, nmax)
	for i := range xs {
		cfg := space.Random(rnd)
		xs[i] = cfg.Vector()
		ys[i] = target.Run(cfg).Time
	}
	cands := make([][]float64, 256)
	for i := range cands {
		cands[i] = space.Random(rnd).Vector()
	}

	scores := make([]float64, len(cands))
	for _, n := range ns {
		best := ys[0]
		for _, v := range ys[:n] {
			if v < best {
				best = v
			}
		}
		// Hyperparameters are searched once on the exact GP and shared by
		// every tier, and each timed Fit runs with optimize=false: rows then
		// compare pure factorization cost, and the agreement column isolates
		// the approximation error rather than grid-search luck.
		hyperRef := gp.New(gp.Matern52)
		if err := hyperRef.Fit(xs[:n], ys[:n], true); err != nil {
			panic(fmt.Sprintf("bench: surrogate hyper search failed: %v", err))
		}
		hp := hyperRef.Hyper

		exact := gp.New(gp.Matern52)
		exactFit := minWall(3, func() {
			exact = gp.New(gp.Matern52)
			exact.Hyper = hp
			mustFit(exact, xs[:n], ys[:n])
		})
		refMu := make([]float64, len(cands))
		for i, c := range cands {
			refMu[i], _ = exact.Predict(c)
		}
		sigmaY := stat.Std(ys[:n])

		tiers := []struct {
			name string
			make func() gp.Surrogate
		}{
			{"exact GP", nil}, // reuses the reference fit above
			{"sparse GP (m=64)", func() gp.Surrogate {
				s := gp.NewSparse(gp.Matern52)
				s.MaxInducing = 64
				s.Hyper = hp
				return s
			}},
			{"RFF (D=128)", func() gp.Surrogate {
				r := gp.NewRFF(gp.Matern52, 128, o.Seed)
				r.Hyper = hp
				return r
			}},
		}
		for _, tier := range tiers {
			var m gp.Surrogate = exact
			fit := exactFit
			if tier.name != "exact GP" { // the exact row is its own baseline
				fit = minWall(3, func() {
					m = tier.make()
					mustFit(m, xs[:n], ys[:n])
				})
			}
			score := minWall(3, func() {
				m.ScoreCandidates(cands, best, scores)
			})
			var sq float64
			mu, _ := m.PredictAll(cands)
			for i := range mu {
				d := mu[i] - refMu[i]
				sq += d * d
			}
			t.AddRow(tier.name, fmt.Sprintf("%d", n),
				fmtWall(fit), fmtWall(score),
				fmt.Sprintf("%.4f", math.Sqrt(sq/float64(len(mu)))/sigmaY),
				fmtSpeedup(speedup(exactFit.Seconds(), fit.Seconds())))
		}
	}
	t.Note("seed %d; hyperparameters searched once on the exact GP and shared (timed fits use optimize=false) so rows compare factorization cost; agreement = rmse of posterior means vs the exact GP over 256 held-out candidates, in training-σy units", o.Seed)
	t.Note("timings are min-of-3 wall clock; agreement and speedup trends are the stable columns")
	return t
}

func mustFit(m gp.Surrogate, xs [][]float64, ys []float64) {
	if err := m.Fit(xs, ys, false); err != nil {
		panic(fmt.Sprintf("bench: surrogate fit failed: %v", err))
	}
}

// minWall runs f reps times and returns the fastest wall-clock duration.
func minWall(reps int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// fmtWall renders a wall-clock duration compactly in milliseconds.
func fmtWall(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
