package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/workload"
)

// Transfer measures cross-session warm-starting — the production lesson the
// persistent repository exists for. A repository of past Spark sessions
// (wordcount, terasort, kmeans: the history a long-lived daemon
// accumulates) is built first; spark/pagerank is deliberately excluded so
// it is unseen. Then iTuned and OtterTune each tune pagerank twice under
// the same budget and target noise stream: cold (no history) and warm
// (seeded with the best configurations transferred from the mapped nearest
// past workload via tune.WarmConfigs; OtterTune additionally gets the
// repository for its own metric-signature mapping).
//
// The headline column is "trials to cold incumbent": the trial at which
// each session first reaches within 5% of the cold run's final best. Warm
// strictly smaller than cold is transfer paying off — the warm session
// matches the cold session's end state with budget to spare and spends the
// remainder improving on it. Transfer is not guaranteed to help (see
// DESIGN.md §10): a mapping onto a dissimilar workload seeds the search in
// the wrong basin, which is why the experiment reports the cold rows too.
func Transfer(o Options) *Table {
	t := &Table{
		Title: "E9 (transfer): cold vs warm start on an unseen workload (spark/pagerank)",
		Columns: []string{
			"approach", "start",
			"best", "trials to cold incumbent", "speedup vs default",
		},
	}
	ctx := context.Background()
	b := o.budget()

	job := func() *workload.SparkJob { return workload.PageRank(o.scaleGB(5, 1), pagerankIters(o)) }
	repo := BuildSparkRepository(o, "pagerank")

	defTime := DefaultTime(SparkTarget(job(), o.Seed+990), 3)

	type variant struct {
		approach string
		start    string
		tuner    func(seed int64, target tune.Target) (tune.Tuner, error)
	}
	warmWrap := func(bt tune.BatchTuner, target tune.Target) (tune.Tuner, error) {
		var features map[string]float64
		if d, ok := target.(tune.Describer); ok {
			features = d.WorkloadFeatures()
		}
		seeds := tune.WarmConfigs(repo, "spark", features, target.Space(), 3)
		if len(seeds) == 0 {
			return nil, fmt.Errorf("bench: repository transferred no configurations")
		}
		return tune.WarmStartTuner(bt, seeds), nil
	}
	variants := []variant{
		{"iTuned", "cold", func(seed int64, _ tune.Target) (tune.Tuner, error) {
			return experiment.NewITuned(seed), nil
		}},
		{"iTuned", "warm", func(seed int64, target tune.Target) (tune.Tuner, error) {
			return warmWrap(experiment.NewITuned(seed), target)
		}},
		{"OtterTune", "cold", func(seed int64, _ tune.Target) (tune.Tuner, error) {
			return ml.NewOtterTune(seed, nil), nil
		}},
		{"OtterTune", "warm", func(seed int64, target tune.Target) (tune.Tuner, error) {
			return warmWrap(ml.NewOtterTune(seed, repo), target)
		}},
	}

	// Cold and warm run against fresh target instances with the same seed,
	// so each pair differs only in starting knowledge; every variant is an
	// independent job for the multi-session scheduler.
	var jobs []engine.Job
	for _, v := range variants {
		// Every variant shares the noise seed, so pairs differ only in
		// starting knowledge.
		target := SparkTarget(job(), o.Seed)
		tn, err := v.tuner(o.Seed, target)
		if err != nil {
			panic(err.Error())
		}
		jobs = append(jobs, engine.Job{Name: v.approach + "/" + v.start, Tuner: tn, Target: target, Budget: b})
	}
	results := o.engine().RunJobs(ctx, jobs)

	for i := 0; i < len(variants); i += 2 {
		cold, warm := results[i], results[i+1]
		if cold.Err != nil || warm.Err != nil {
			panic(fmt.Sprintf("bench: transfer session failed: %v / %v", cold.Err, warm.Err))
		}
		coldBest := cold.Result.BestResult.Time
		for j, r := range []engine.JobResult{cold, warm} {
			reach := r.Result.TrialsToWithin(coldBest, 1.05)
			reachS := "never"
			if reach > 0 {
				reachS = fmt.Sprintf("%d", reach)
			}
			t.AddRow(variants[i+j].approach, variants[i+j].start,
				fmtSeconds(r.Result.BestResult.Time), reachS,
				fmtSpeedup(speedup(defTime, r.Result.BestResult.Time)))
		}
	}
	t.Note("budget %d trials each; repository: %d past spark sessions (wordcount, terasort, kmeans), pagerank unseen; default %s",
		b.Trials, len(repo.Sessions), fmtSeconds(defTime))
	t.Note("trials to cold incumbent = first trial within 5%% of the cold run's final best; warm < cold means transfer helped")
	return t
}
