package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// FidelityReachFactor is the incumbent-parity tolerance: a session has
// "reached the full-fidelity incumbent" at the first full-fidelity trial
// within this factor of the full run's final best.
const FidelityReachFactor = 1.10

// Fidelity measures multi-fidelity tuning — the budget-aware experiment
// allocation every surveyed tuner ultimately pays for. Full-fidelity iTuned
// spends one complete workload run per trial; Hyperband-iTuned (and the
// single successive-halving bracket) screen the same proposer's
// configurations at 1/9 and 1/3 of the workload first and promote only rung
// survivors to full runs, early-stopping the rest (TrialPruned). All
// variants share the trial budget, the seed, and the target noise stream,
// so rows differ only in how the budget is allocated across fidelities.
//
// The headline column is "cost to reach full incumbent": the cumulative
// simulated evaluation seconds spent when the session first has a
// full-fidelity result within FidelityReachFactor of the full-fidelity
// run's final best. Multi-fidelity reaching parity at a fraction of the
// cost is the order-of-magnitude claim; it holds here because a
// sampled-ops DBMS workload ranks configurations faithfully at low
// fidelity (see DESIGN.md §11 for when it would not).
func Fidelity(o Options) *Table {
	t := &Table{
		Title: "E10 (fidelity): successive-halving/Hyperband vs full-fidelity tuning (dbms/tpch)",
		Columns: []string{
			"approach", "trials", "full-fidelity runs", "pruned", "best",
			"eval cost", "cost to reach full incumbent", "cost ratio",
		},
	}
	b := o.budget()
	if b.Trials < 22 {
		// One default Hyperband sweep is 22 trials; smaller budgets still
		// run (a clipped bracket keeps a full-fidelity top rung) but the
		// comparison is only interesting with at least one whole sweep.
		b.Trials = 22
	}
	scale := o.scaleGB(3, 2)

	mustMF := func(strategy string, seed int64) tune.Tuner {
		mf, err := tune.NewMultiFidelity(experiment.NewITuned(seed), tune.FidelitySpace{}, strategy, seed)
		if err != nil {
			panic(err.Error())
		}
		return mf
	}
	variants := []struct {
		approach string
		tuner    func(seed int64) tune.Tuner
	}{
		{"iTuned (full fidelity)", func(seed int64) tune.Tuner { return experiment.NewITuned(seed) }},
		{"Hyperband-iTuned", func(seed int64) tune.Tuner { return mustMF(tune.StrategyHyperband, seed) }},
		{"SuccessiveHalving-iTuned", func(seed int64) tune.Tuner { return mustMF(tune.StrategyHalving, seed) }},
	}
	// Submitted through run handles (not RunJobs) so the pruned-trial count
	// is observable from each session's event log.
	eng := o.engine()
	runs := make([]*engine.Run, len(variants))
	for i, v := range variants {
		runs[i] = eng.Submit(engine.Job{
			Name:   v.approach,
			Tuner:  v.tuner(o.Seed),
			Target: DBMSTarget(workload.TPCHLike(scale), o.Seed),
			Budget: b,
		})
	}
	results := make([]*tune.TuningResult, len(runs))
	for i, r := range runs {
		res, err := r.Wait(context.Background())
		if err != nil {
			panic(fmt.Sprintf("bench: fidelity session %s failed: %v", variants[i].approach, err))
		}
		results[i] = res
	}

	fullBest := results[0].BestResult.Time
	fullCost := results[0].SimTimeUsed
	for i, res := range results {
		full := 0
		for _, tr := range res.Trials {
			if tr.Result.FullFidelity() {
				full++
			}
		}
		pruned, _ := runs[i].FidelityProgress()
		reach := ReachCost(res, fullBest, FidelityReachFactor)
		reachS, ratioS := "never", "—"
		if reach >= 0 {
			reachS = fmtSeconds(reach)
			ratioS = fmt.Sprintf("%.0f%%", 100*reach/fullCost)
		}
		t.AddRow(variants[i].approach,
			fmt.Sprintf("%d", len(res.Trials)),
			fmt.Sprintf("%d", full),
			fmt.Sprintf("%d", pruned),
			fmtSeconds(res.BestResult.Time),
			fmtSeconds(res.SimTimeUsed),
			reachS, ratioS)
	}
	t.Note("budget %d trials each at seed %d; fidelity ladder 1/9 → 1/3 → 1 (η=3); reach = first full-fidelity trial within %.0f%% of the full run's final best",
		b.Trials, o.Seed, 100*(FidelityReachFactor-1))
	t.Note("cost ratio = reach cost / the full-fidelity run's total evaluation cost (%.0fs); results identical at any -parallel", fullCost)
	return t
}

// ReachCost returns the cumulative simulated evaluation cost at the first
// full-fidelity, non-failed trial whose time is within factor×reference, or
// -1 if the session never got there. Low-fidelity screens count toward the
// cost — that is the price of the schedule — but cannot satisfy the
// reach condition.
func ReachCost(res *tune.TuningResult, reference, factor float64) float64 {
	limit := reference * factor
	cost := 0.0
	for _, tr := range res.Trials {
		cost += tr.Result.Time
		if !tr.Result.Failed && tr.Result.FullFidelity() && tr.Result.Time <= limit {
			return cost
		}
	}
	return -1
}
