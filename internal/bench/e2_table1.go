package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/sysmodel/dbms"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/costmodel"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/tuners/rulebased"
	"repro/internal/tuners/simulation"
	"repro/internal/workload"
)

// Table1 regenerates the paper's Table 1 quantitatively: one representative
// tuner per category runs against all three systems under an identical trial
// budget. For each (category, system) cell it reports the speedup over the
// default configuration, the number of real runs consumed, and the tuning
// cost in cumulative simulated time — making the qualitative
// strengths/weaknesses matrix measurable:
//
//   - rule-based and cost modeling spend ≤1 run but plateau early,
//   - simulation predicts cheaply but misses dynamics,
//   - experiment-driven and ML find the best configurations at the highest
//     run cost (ML converging faster thanks to repository transfer),
//   - adaptive needs no offline runs at all and improves the live workload,
//     at the risk of bad probe epochs.
func Table1(o Options) *Table {
	t := &Table{
		Title: "E2 (Table 1): six tuning categories × three systems",
		Columns: []string{
			"category", "tuner",
			"dbms speedup", "runs", "tuning cost",
			"hadoop speedup", "runs", "tuning cost",
			"spark speedup", "runs", "tuning cost",
		},
	}
	ctx := context.Background()
	b := o.budget()

	// Targets: one workload per system, fresh per tuner for independence.
	newDBMS := func(seed int64) tune.Target {
		return DBMSTarget(workload.TPCHLike(o.scaleGB(10, 2)), seed)
	}
	newHadoop := func(seed int64) tune.Target {
		return HadoopTarget(workload.TeraSort(o.scaleGB(50, 4)), seed)
	}
	newSpark := func(seed int64) tune.Target {
		return SparkTarget(workload.PageRank(o.scaleGB(5, 1), pagerankIters(o)), seed)
	}

	defDBMS := DefaultTime(newDBMS(o.Seed+900), 3)
	defHadoop := DefaultTime(newHadoop(o.Seed+901), 3)
	defSpark := DefaultTime(newSpark(o.Seed+902), 3)

	dbmsRepo := BuildDBMSRepository(o, "tpch")
	hadoopRepo := BuildHadoopRepository(o, "terasort")
	sparkRepo := BuildSparkRepository(o, "pagerank")

	// scaled proxies for the simulation category on Hadoop and Spark.
	hadoopProxy := func(seed int64) tune.Target {
		h := HadoopTarget(workload.TeraSort(o.scaleGB(5, 1)), seed)
		h.NoiseStd = 0.001
		return h
	}
	sparkProxy := func(seed int64) tune.Target {
		s := SparkTarget(workload.PageRank(o.scaleGB(1, 0.3), 3), seed)
		s.NoiseStd = 0.001
		return s
	}

	type cell struct {
		speedup string
		runs    string
		cost    string
	}
	na := cell{"n/a", "-", "-"}

	type rowSpec struct {
		category string
		label    string
		dbms     func(seed int64) tune.Tuner
		hadoop   func(seed int64) tune.Tuner
		spark    func(seed int64) tune.Tuner
	}
	rows := []rowSpec{
		{
			category: "Rule-based", label: "expert rulebooks",
			dbms:   func(int64) tune.Tuner { return rulebased.NewTuner(rulebased.DBMSRules()) },
			hadoop: func(int64) tune.Tuner { return rulebased.NewTuner(rulebased.HadoopRules()) },
			spark:  func(int64) tune.Tuner { return rulebased.NewTuner(rulebased.SparkRules()) },
		},
		{
			category: "Cost modeling", label: "STMM / Starfish / Ernest",
			dbms:   func(int64) tune.Tuner { return costmodel.NewSTMM() },
			hadoop: func(seed int64) tune.Tuner { return costmodel.NewStarfish(seed) },
			spark:  func(int64) tune.Tuner { return costmodel.NewErnest() },
		},
		{
			category: "Simulation", label: "trace what-if / scaled replica",
			dbms: func(seed int64) tune.Tuner { return simulation.NewTraceWhatIf(seed) },
			hadoop: func(seed int64) tune.Tuner {
				return simulation.NewScaledProxy(hadoopProxy(seed+5000), seed)
			},
			spark: func(seed int64) tune.Tuner {
				return simulation.NewScaledProxy(sparkProxy(seed+6000), seed)
			},
		},
		{
			category: "Experiment-driven", label: "iTuned (LHS+GP+EI)",
			dbms:   func(seed int64) tune.Tuner { return experiment.NewITuned(seed) },
			hadoop: func(seed int64) tune.Tuner { return experiment.NewITuned(seed) },
			spark:  func(seed int64) tune.Tuner { return experiment.NewITuned(seed) },
		},
		{
			category: "Machine learning", label: "OtterTune (with repository)",
			dbms:   func(seed int64) tune.Tuner { return ml.NewOtterTune(seed, dbmsRepo) },
			hadoop: func(seed int64) tune.Tuner { return ml.NewOtterTune(seed, hadoopRepo) },
			spark:  func(seed int64) tune.Tuner { return ml.NewOtterTune(seed, sparkRepo) },
		},
		{
			category: "Adaptive", label: "COLT online / recommender",
			dbms: func(seed int64) tune.Tuner {
				c := adaptive.NewCOLT(seed)
				c.Runs = 3
				return c
			},
			hadoop: func(seed int64) tune.Tuner { return adaptive.NewRecommender(seed, hadoopRepo) },
			spark: func(seed int64) tune.Tuner {
				c := adaptive.NewCOLT(seed)
				c.Runs = 3
				return c
			},
		},
	}

	// Every (category, system) cell is an independent job with its own
	// target and seed: the multi-session scheduler runs them across all
	// workers, and the table is identical at any parallelism.
	type cellRef struct {
		row, col int
		target   tune.Target
		def      float64
	}
	var jobs []engine.Job
	var refs []cellRef
	for i, spec := range rows {
		seed := o.Seed + int64(i+1)*31
		add := func(col int, tn tune.Tuner, target tune.Target, def float64) {
			jobs = append(jobs, engine.Job{Name: spec.category, Tuner: tn, Target: target, Budget: b})
			refs = append(refs, cellRef{row: i, col: col, target: target, def: def})
		}
		if spec.dbms != nil {
			add(0, spec.dbms(seed), newDBMS(seed+1), defDBMS)
		}
		if spec.hadoop != nil {
			add(1, spec.hadoop(seed), newHadoop(seed+2), defHadoop)
		}
		if spec.spark != nil {
			add(2, spec.spark(seed), newSpark(seed+3), defSpark)
		}
	}
	results := o.engine().RunJobs(ctx, jobs)

	cells := make([][3]cell, len(rows))
	for i := range cells {
		cells[i] = [3]cell{na, na, na}
	}
	for k, jr := range results {
		ref := refs[k]
		if jr.Err != nil {
			cells[ref.row][ref.col] = cell{"err", "-", "-"}
			continue
		}
		r := jr.Result
		best := r.BestResult.Time
		if len(r.Trials) == 0 {
			// Pure recommendation: measure it once out-of-budget.
			best = ref.target.Run(r.Best).Time
		}
		cells[ref.row][ref.col] = cell{
			fmtSpeedup(speedup(ref.def, best)),
			fmt.Sprintf("%d", len(r.Trials)),
			fmtSeconds(r.SimTimeUsed),
		}
	}
	for i, spec := range rows {
		cd, ch, cs := cells[i][0], cells[i][1], cells[i][2]
		t.AddRow(spec.category, spec.label,
			cd.speedup, cd.runs, cd.cost,
			ch.speedup, ch.runs, ch.cost,
			cs.speedup, cs.runs, cs.cost)
	}

	t.Note("budget %d trials per tuner; defaults: dbms %s, hadoop %s, spark %s",
		b.Trials, fmtSeconds(defDBMS), fmtSeconds(defHadoop), fmtSeconds(defSpark))
	t.Note("tuning cost = cumulative simulated time of real runs; adaptive runs count whole online executions")
	return t
}

// Interface-conformance guards for the simulators used above.
var (
	_ tune.Target = (*dbms.DBMS)(nil)
	_ tune.Target = (*mapreduce.Hadoop)(nil)
	_ tune.Target = (*spark.Spark)(nil)
)
