package bench

import (
	"context"
	"fmt"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/paralleldb"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/rulebased"
	"repro/internal/workload"
)

// HadoopGap regenerates the §2.3 claim: in the Pavlo et al. comparison a
// best-practices Hadoop trailed parallel databases by 3.1–6.5× on
// grep/aggregation/join, stock defaults were far worse, and subsequent
// tuning studies closed most of the gap. Rows are the three benchmark
// tasks; columns compare the parallel database against Hadoop at three
// configuration levels.
func HadoopGap(o Options) *Table {
	t := &Table{
		Title: "E4 (§2.3): Hadoop vs parallel DB on the Pavlo benchmark",
		Columns: []string{
			"task", "parallel db", "hadoop stock", "stock gap",
			"hadoop practices", "practices gap", "hadoop tuned", "tuned gap",
		},
	}
	ctx := context.Background()
	cl := cluster.Commodity(16)
	gb := o.scaleGB(20, 3)

	jobs := []*workload.MRJob{
		workload.Grep(gb),
		workload.Aggregation(gb),
		workload.JoinMR(gb),
	}
	var gaps []float64
	for i, job := range jobs {
		seed := o.Seed + int64(i)*17
		pdb := paralleldb.New(cl, job, seed+1)
		pdbTime := DefaultTime(pdb, 3)

		stock := HadoopTargetOn(cl, job, seed+2)
		stockTime := DefaultTime(stock, 3)

		practices := HadoopTargetOn(cl, job, seed+3)
		rules := rulebased.NewTuner(rulebased.HadoopRules())
		rr, err := rules.Tune(ctx, practices, tune.Budget{Trials: 1})
		if err != nil {
			panic(fmt.Sprintf("bench: hadoopgap rules: %v", err))
		}
		practicesTime := rr.BestResult.Time
		if len(rr.Trials) == 0 {
			practicesTime = practices.Run(rr.Best).Time
		}

		tunedTarget := HadoopTargetOn(cl, job, seed+4)
		it := experiment.NewITuned(seed + 5)
		tr, err := it.Tune(ctx, tunedTarget, o.budget())
		if err != nil {
			panic(fmt.Sprintf("bench: hadoopgap ituned: %v", err))
		}
		tunedTime := tr.BestResult.Time

		gap := speedup(practicesTime, pdbTime)
		gaps = append(gaps, gap)
		t.AddRow(job.Name,
			fmtSeconds(pdbTime),
			fmtSeconds(stockTime), fmtSpeedup(speedup(stockTime, pdbTime)),
			fmtSeconds(practicesTime), fmtSpeedup(gap),
			fmtSeconds(tunedTime), fmtSpeedup(speedup(tunedTime, pdbTime)),
		)
	}
	t.Note("paper band: best-practices Hadoop trails the parallel DB by 3.1–6.5×; tuning narrows it")
	t.Note("measured practices gaps: %s / %s / %s", fmtSpeedup(gaps[0]), fmtSpeedup(gaps[1]), fmtSpeedup(gaps[2]))
	return t
}

// HadoopTargetOn builds a Hadoop target on a specific cluster.
func HadoopTargetOn(cl *cluster.Cluster, job *workload.MRJob, seed int64) *mapreduce.Hadoop {
	return mapreduce.New(cl, job, seed)
}
