package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/rulebased"
	"repro/internal/workload"
)

// Realtime probes the paper's third open challenge (§2.5): real-time
// analytics, where the objective is batch latency against an arrival
// interval rather than batch throughput. Static configurations (default and
// rule-based) are compared against online adaptation on a streaming
// micro-batch job; the scoreboard is p95 latency and the fraction of batches
// that miss the arrival deadline (falling behind the stream).
func Realtime(o Options) *Table {
	t := &Table{
		Title:   "E8 (§2.5-3): streaming micro-batch latency, static vs adaptive",
		Columns: []string{"configuration", "mean batch", "p95 batch", "deadline misses", "total"},
	}
	batches := 40
	if o.Fast {
		batches = 12
	}
	interval := 10.0
	// The stream drifts: batch volume grows 6% per batch (~10× over 40
	// batches), the workload-shift setting that motivates online tuning.
	job := workload.StreamingDrift(o.scaleGB(2, 0.5)*1024, batches, interval, 0.06)

	measure := func(label string, run func(target *spark.Spark) tune.Result) {
		target := SparkTarget(job, o.Seed+91)
		res := run(target)
		mean := res.Metrics["mean_batch_latency_s"]
		if mean == 0 {
			mean = res.Time / float64(batches)
		}
		lat := res.Metrics["p95_batch_latency_s"]
		misses := int(res.Metrics["deadline_misses"])
		t.AddRow(label, fmtSeconds(mean), fmtSeconds(lat),
			fmt.Sprintf("%d/%d", misses, batches), fmtSeconds(res.Time))
	}

	measure("static default", func(target *spark.Spark) tune.Result {
		return target.Run(target.Space().Default())
	})
	rulesCfg := func(target *spark.Spark) tune.Config {
		return rulebased.SparkRules().Apply(target.Space(), target.Specs(), target.WorkloadFeatures())
	}
	measure("static rules", func(target *spark.Spark) tune.Result {
		return target.Run(rulesCfg(target))
	})
	// Executor sizing cannot change mid-stream, so online adaptation starts
	// from the static rules deployment and retunes the runtime knobs.
	measure("adaptive partitions (Gounaris)", func(target *spark.Spark) tune.Result {
		return target.RunAdaptive(rulesCfg(target), adaptive.NewPartitionController())
	})
	measure("adaptive COLT (from rules)", func(target *spark.Spark) tune.Result {
		ctl := &adaptiveStart{inner: adaptive.NewCOLT(o.Seed + 92), start: rulesCfg(target)}
		return target.RunAdaptive(ctl.start, ctl)
	})
	// The ad-hoc case: nobody tuned this stream. Online adaptation is the
	// only option (executor sizing is fixed, but dynamic allocation and
	// partitioning are live knobs).
	measure("adaptive COLT (from default)", func(target *spark.Spark) tune.Result {
		def := target.Space().Default()
		ctl := &adaptiveStart{inner: adaptive.NewCOLT(o.Seed + 93), start: def}
		return target.RunAdaptive(def, ctl)
	})

	t.Note("%d batches of %.0f MB arriving every %s; misses = batches slower than the interval",
		batches, o.scaleGB(2, 0.5)*1024, fmtSeconds(interval))
	t.Note("adaptive rows start from the rules deployment: executor sizing is fixed mid-stream")
	return t
}

// adaptiveStart wraps COLT's single-knob probing for a streaming run that
// begins at an informed static configuration.
type adaptiveStart struct {
	inner *adaptive.COLT
	start tune.Config
	ctl   tune.EpochController
}

func (a *adaptiveStart) Epoch(i int, current tune.Config, prev map[string]float64) tune.Config {
	if a.ctl == nil {
		a.ctl = a.inner.Controller(a.start.Space(), rand.New(rand.NewSource(a.inner.Seed)), 1000)
	}
	return a.ctl.Epoch(i, current, prev)
}
