package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives every random stream in the experiment.
	Seed int64
	// Budget is the per-tuner trial budget (default 30).
	Budget int
	// Fast shrinks workloads and budgets for test-suite runs.
	Fast bool
	// Parallel is the worker count for the multi-session scheduler
	// (default 1). Every tuning job owns its target and seed, so tables
	// are identical at any parallelism.
	Parallel int
}

// engine returns the concurrent engine experiments schedule jobs on.
func (o Options) engine() *engine.Engine {
	w := o.Parallel
	if w <= 0 {
		w = 1
	}
	return engine.New(engine.Options{Workers: w})
}

func (o Options) budget() tune.Budget {
	b := o.Budget
	if b <= 0 {
		b = 30
	}
	if o.Fast && b > 12 {
		b = 12
	}
	return tune.Budget{Trials: b}
}

// scaleGB returns full unless Fast, then small.
func (o Options) scaleGB(full, small float64) float64 {
	if o.Fast {
		return small
	}
	return full
}

// Standard deployments shared by the experiments.

// DBMSTarget returns the standard single-node DBMS running wl.
func DBMSTarget(wl *workload.DBWorkload, seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), wl, seed)
}

// HadoopTarget returns the standard 16-node Hadoop cluster running job.
func HadoopTarget(job *workload.MRJob, seed int64) *mapreduce.Hadoop {
	return mapreduce.New(cluster.Commodity(16), job, seed)
}

// SparkTarget returns the standard 16-node Spark cluster running job.
func SparkTarget(job *workload.SparkJob, seed int64) *spark.Spark {
	return spark.New(cluster.Commodity(16), job, seed)
}

// Reference finds a best-known configuration for target by spending a
// generous search budget (iTuned plus random), returning its runtime. It is
// the denominator for "trials to within 10% of best-known" measurements.
func Reference(target tune.Target, seed int64, budget int) (tune.Config, float64) {
	if budget <= 0 {
		budget = 120
	}
	ctx := context.Background()
	it := experiment.NewITuned(seed + 1000)
	r1, err := it.Tune(ctx, target, tune.Budget{Trials: budget * 2 / 3})
	if err != nil {
		panic(fmt.Sprintf("bench: reference search failed: %v", err))
	}
	rd := &experiment.Random{Seed: seed + 2000}
	r2, err := rd.Tune(ctx, target, tune.Budget{Trials: budget / 3})
	if err != nil {
		panic(fmt.Sprintf("bench: reference search failed: %v", err))
	}
	if r2.BestResult.Objective() < r1.BestResult.Objective() {
		return r2.Best, r2.BestResult.Time
	}
	return r1.Best, r1.BestResult.Time
}

// DefaultTime measures the target's default configuration, averaged over a
// few runs to damp noise.
func DefaultTime(target tune.Target, runs int) float64 {
	if runs <= 0 {
		runs = 3
	}
	def := target.Space().Default()
	var s float64
	n := 0
	for i := 0; i < runs; i++ {
		r := target.Run(def)
		s += r.Time
		n++
	}
	return s / float64(n)
}

// speedup guards against division blowups for failed or zero baselines.
func speedup(base, tuned float64) float64 {
	if tuned <= 0 {
		return math.Inf(1)
	}
	return base / tuned
}

// fmtSpeedup renders a speedup as "3.4x".
func fmtSpeedup(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtSeconds renders seconds compactly.
func fmtSeconds(v float64) string {
	switch {
	case v >= 3600:
		return fmt.Sprintf("%.1fh", v/3600)
	case v >= 60:
		return fmt.Sprintf("%.1fm", v/60)
	default:
		return fmt.Sprintf("%.1fs", v)
	}
}
