package bench

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/mathx/stat"
	"repro/internal/sysmodel/trace"
	"repro/internal/tune"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/costmodel"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/tuners/rulebased"
	"repro/internal/tuners/simulation"
	"repro/internal/workload"
)

// groundTruthImportance estimates each parameter's true effect on the target
// by a one-at-a-time sweep: the spread of mean runtimes across levels of the
// parameter with everything else at defaults. Ranking approaches (SARD,
// configuration navigation, Lasso) are scored against this ordering.
func groundTruthImportance(target tune.Target, levels, reps int) []float64 {
	space := target.Space()
	d := space.Dim()
	base := space.Default().Vector()
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		var means []float64
		for l := 0; l < levels; l++ {
			x := append([]float64(nil), base...)
			x[j] = (float64(l) + 0.5) / float64(levels)
			var s float64
			for r := 0; r < reps; r++ {
				s += target.Run(space.FromVector(x)).Objective()
			}
			means = append(means, s/float64(reps))
		}
		out[j] = stat.Max(means) - stat.Min(means)
	}
	return out
}

// rankingQuality returns the Spearman correlation between a claimed ranking
// (names, most important first) and ground-truth effects.
func rankingQuality(space *tune.Space, ranking []string, truth []float64) float64 {
	// Convert ranking to scores: position 0 = highest score.
	scores := make([]float64, space.Dim())
	for pos, name := range ranking {
		if i := space.IndexOf(name); i >= 0 {
			scores[i] = float64(len(ranking) - pos)
		}
	}
	return stat.Spearman(scores, truth)
}

// Table2 regenerates the paper's Table 2 with measured outcomes: every
// surveyed DBMS tuning approach re-implemented and exercised on the DBMS
// simulator against its own target problem (ranking quality, misconfiguration
// detection, prediction error, or tuning speedup).
func Table2(o Options) *Table {
	t := &Table{
		Title: "E3 (Table 2): DBMS parameter-tuning approaches, reproduced and measured",
		Columns: []string{
			"category", "approach", "methodology", "target problem", "measured outcome",
		},
	}
	ctx := context.Background()
	b := o.budget()
	wl := workload.MixedDB(o.scaleGB(6, 1.5))
	seed := o.Seed + 40

	newTarget := func(i int64) tune.Target { return DBMSTarget(wl, seed+i) }
	def := DefaultTime(newTarget(0), 3)

	gtLevels, gtReps := 5, 2
	if o.Fast {
		gtLevels, gtReps = 3, 1
	}
	truthTarget := newTarget(1)
	truth := groundTruthImportance(truthTarget, gtLevels, gtReps)
	space := truthTarget.Space()

	// All plain tuning cells run concurrently on the scheduler up front;
	// each owns its target (newTarget(i)), so the table is identical at any
	// parallelism. The bespoke measurement blocks below stay inline.
	repo := BuildDBMSRepository(o, wl.Name)
	ot := ml.NewOtterTune(o.Seed+47, repo)
	colt := adaptive.NewCOLT(o.Seed + 48)
	colt.Runs = 3
	type tuned struct {
		result *tune.TuningResult
		target tune.Target
		err    error
	}
	sessions := map[int64]*tuned{}
	var jobs []engine.Job
	var jobIdx []int64
	addJob := func(i int64, tn tune.Tuner) {
		target := newTarget(i)
		sessions[i] = &tuned{target: target}
		jobs = append(jobs, engine.Job{Name: fmt.Sprintf("table2/%d", i), Tuner: tn, Target: target, Budget: b})
		jobIdx = append(jobIdx, i)
	}
	addJob(3, rulebased.NewNavigator())
	addJob(4, costmodel.NewSTMM())
	addJob(6, simulation.NewADDM())
	addJob(8, experiment.NewAdaptiveSampling(o.Seed+44))
	addJob(9, experiment.NewITuned(o.Seed+45))
	addJob(10, ml.NewNeuralTuner(o.Seed+46))
	addJob(11, ot)
	addJob(12, colt)
	for k, jr := range o.engine().RunJobs(ctx, jobs) {
		s := sessions[jobIdx[k]]
		s.result, s.err = jr.Result, jr.Err
	}
	tuneOutcome := func(i int64) string {
		s := sessions[i]
		if s.err != nil {
			return "error: " + s.err.Error()
		}
		best := s.result.BestResult.Time
		if len(s.result.Trials) == 0 {
			best = s.target.Run(s.result.Best).Time
		}
		return fmt.Sprintf("%s speedup in %d runs", fmtSpeedup(speedup(def, best)), len(s.result.Trials))
	}

	// --- SPEX: misconfiguration detection --------------------------------
	{
		checker := rulebased.DBMSChecker()
		target := newTarget(2)
		specs := target.(tune.SpecProvider).Specs()
		rng := rand.New(rand.NewSource(o.Seed + 41))
		n := 120
		if o.Fast {
			n = 40
		}
		var tp, fp, fn, tn int
		for i := 0; i < n; i++ {
			cfg := target.Space().Random(rng)
			flagged := len(checker.Validate(cfg, specs)) > 0
			res := target.Run(cfg)
			bad := res.Failed || res.Metrics["mem_oversubscription"] > 1
			switch {
			case flagged && bad:
				tp++
			case flagged && !bad:
				fp++
			case !flagged && bad:
				fn++
			default:
				tn++
			}
		}
		precision := 0.0
		if tp+fp > 0 {
			precision = float64(tp) / float64(tp+fp)
		}
		recall := 0.0
		if tp+fn > 0 {
			recall = float64(tp) / float64(tp+fn)
		}
		t.AddRow("Rule-based", "SPEX [27]", "Constraint inference", "Avoid error-prone configs",
			fmt.Sprintf("detects bad configs: precision %.2f recall %.2f (n=%d)", precision, recall, n))
	}

	// --- Tianyin: parameter ranking by navigation -------------------------
	{
		ranking := space.ByImpact()
		rho := rankingQuality(space, ranking, truth)
		out := tuneOutcome(3)
		t.AddRow("Rule-based", "Tianyin [26]", "Configuration navigation", "Ranking the effects of parameters",
			fmt.Sprintf("doc-impact ranking ρ=%.2f vs ground truth; %s", rho, out))
	}

	// --- STMM -------------------------------------------------------------
	t.AddRow("Cost modeling", "STMM [22]", "Cost-benefit analysis", "Tuning, Recommendation",
		tuneOutcome(4))

	// --- Dushyanth: trace-based prediction ---------------------------------
	{
		target := newTarget(5)
		specs := target.(tune.SpecProvider).Specs()
		probe := target.Run(target.Space().Default())
		tr := simulation.TraceFromMetrics(probe.Metrics, specs)
		rng := rand.New(rand.NewSource(o.Seed + 42))
		n := 20
		if o.Fast {
			n = 8
		}
		var pred, actual []float64
		for i := 0; i < n; i++ {
			cfg := target.Space().Random(rng)
			pred = append(pred, trace.Replay(tr, simulation.ResourcesFor(cfg, specs)))
			actual = append(actual, target.Run(cfg).Time)
		}
		mape := stat.MAPE(pred, actual)
		corr := stat.Spearman(pred, actual)
		t.AddRow("Simulation", "Dushyanth [17]", "Trace-based simulation", "Prediction",
			fmt.Sprintf("replay prediction: rank-corr %.2f, MAPE %.0f%% (n=%d)", corr, mape*100, n))
	}

	// --- ADDM ---------------------------------------------------------------
	t.AddRow("Simulation", "ADDM [8]", "DAG model & simulation", "Profiling, Tuning",
		tuneOutcome(6))

	// --- SARD: screening quality ---------------------------------------------
	{
		sard := experiment.NewSARD(o.Seed + 43)
		ranking, _, err := sard.Screen(ctx, newTarget(7), b)
		out := "error"
		if err == nil {
			rho := rankingQuality(space, ranking, truth)
			out = fmt.Sprintf("P&B ranking ρ=%.2f vs ground truth; top-3: %s, %s, %s",
				rho, ranking[0], ranking[1], ranking[2])
		}
		t.AddRow("Experiment-driven", "SARD [7]", "P&B statistical design", "Ranking the effects of parameters", out)
	}

	// --- Shivnath adaptive sampling -------------------------------------------
	t.AddRow("Experiment-driven", "Shivnath [3]", "Adaptive sampling", "Profiling, Tuning",
		tuneOutcome(8))

	// --- iTuned ------------------------------------------------------------------
	t.AddRow("Experiment-driven", "iTuned [9]", "LHS & Gaussian Process", "Profiling, Tuning",
		tuneOutcome(9))

	// --- Rodd NN -------------------------------------------------------------------
	t.AddRow("Machine learning", "Rodd [19]", "Neural Networks", "Tuning, Recommendation",
		tuneOutcome(10))

	// --- OtterTune --------------------------------------------------------------------
	{
		out := tuneOutcome(11)
		if ot.LastMappedWorkload != "" {
			out += fmt.Sprintf("; mapped to %q", ot.LastMappedWorkload)
		}
		t.AddRow("Machine learning", "OtterTune [24]", "Gaussian Process", "Tuning, Recommendation", out)
	}

	// --- COLT -------------------------------------------------------------------------
	{
		target := sessions[12].target
		r, err := sessions[12].result, sessions[12].err
		out := "error"
		if err == nil && len(r.Trials) > 0 {
			first := r.Trials[0].Result.Time
			last := r.Trials[len(r.Trials)-1].Result.Time
			out = fmt.Sprintf("online runs improve %s → %s (default %s); converged config %s",
				fmtSeconds(first), fmtSeconds(last), fmtSeconds(def),
				fmtSpeedup(speedup(def, target.Run(r.Best).Time)))
		}
		t.AddRow("Adaptive", "COLT [20]", "Cost Vs. Gain analysis", "Profiling, Tuning", out)
	}

	t.Note("workload: %s (%0.1f GB), budget %d trials; ground truth from one-at-a-time sweeps", wl.Name, o.scaleGB(6, 1.5), b.Trials)
	return t
}
