package bench

import (
	"math/rand"

	"repro/internal/mathx/stat"
	"repro/internal/tune"
	"repro/internal/workload"
)

// Motivation regenerates the paper's §1 motivating claims: improper
// parameter settings cause severe degradation and instability, while tuning
// buys improvements "sometimes measured in orders of magnitude". For each
// system we sample random configurations and compare their runtime
// distribution against the shipped default and a tuned configuration.
func Motivation(o Options) *Table {
	t := &Table{
		Title: "E1 (§1): cost of misconfiguration and value of tuning",
		Columns: []string{
			"system", "default", "random median", "random p95", "crash %",
			"worst/best", "tuned", "tuned speedup",
		},
	}
	samples := 300
	if o.Fast {
		samples = 60
	}
	run := func(name string, target tune.Target) {
		rng := rand.New(rand.NewSource(o.Seed + 11))
		def := DefaultTime(target, 3)
		var times []float64
		fails := 0
		for i := 0; i < samples; i++ {
			res := target.Run(target.Space().Random(rng))
			if res.Failed {
				fails++
			}
			times = append(times, res.Time)
		}
		_, bestTime := Reference(target, o.Seed, referenceBudget(o))
		worst := stat.Max(times)
		best := stat.Min(times)
		t.AddRow(
			name,
			fmtSeconds(def),
			fmtSeconds(stat.Quantile(times, 0.5)),
			fmtSeconds(stat.Quantile(times, 0.95)),
			float64(fails)/float64(samples)*100,
			speedup(worst, best),
			fmtSeconds(bestTime),
			fmtSpeedup(speedup(def, bestTime)),
		)
	}

	run("dbms/tpch", DBMSTarget(workload.TPCHLike(o.scaleGB(10, 2)), o.Seed+1))
	run("dbms/oltp", DBMSTarget(workload.OLTP(64, o.scaleGB(4, 1)), o.Seed+2))
	run("hadoop/terasort", HadoopTarget(workload.TeraSort(o.scaleGB(50, 4)), o.Seed+3))
	run("spark/pagerank", SparkTarget(workload.PageRank(o.scaleGB(5, 1), pagerankIters(o)), o.Seed+4))

	t.Note("%d random configurations per system; crash %% = failed runs (OOM, placement)", samples)
	t.Note("worst/best spans the random sample: the 'orders of magnitude' the paper cites")
	return t
}

func pagerankIters(o Options) int {
	if o.Fast {
		return 4
	}
	return 8
}

func referenceBudget(o Options) int {
	if o.Fast {
		return 25
	}
	return 120
}
