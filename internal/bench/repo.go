package bench

import (
	"context"
	"fmt"

	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// BuildDBMSRepository synthesizes a tuning repository from past sessions over
// DBMS workloads other than the one about to be tuned — the corpus
// OtterTune-style transfer requires. Each past workload contributes one
// exploratory session (random) and one guided session (iTuned).
func BuildDBMSRepository(o Options, exclude string) *tune.Repository {
	repo := &tune.Repository{}
	past := []*workload.DBWorkload{
		workload.TPCHLike(o.scaleGB(10, 2)),
		workload.OLTP(64, o.scaleGB(4, 1)),
		workload.MixedDB(o.scaleGB(6, 1.5)),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	for i, wl := range past {
		if wl.Name == exclude {
			continue
		}
		target := DBMSTarget(wl, o.Seed+int64(100+i))
		addSession(repo, target, "dbms", wl.Name, o.Seed+int64(10*i), trials)
	}
	return repo
}

// BuildSparkRepository is the Spark analogue of BuildDBMSRepository.
func BuildSparkRepository(o Options, exclude string) *tune.Repository {
	repo := &tune.Repository{}
	past := []*workload.SparkJob{
		workload.WordCountSpark(o.scaleGB(20, 2)),
		workload.TeraSortSpark(o.scaleGB(20, 2)),
		workload.PageRank(o.scaleGB(5, 1), 8),
		workload.KMeansSpark(o.scaleGB(8, 1), 10),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	for i, job := range past {
		if job.Name == exclude {
			continue
		}
		target := SparkTarget(job, o.Seed+int64(200+i))
		addSession(repo, target, "spark", job.Name, o.Seed+int64(20*i), trials)
	}
	return repo
}

// BuildHadoopRepository is the Hadoop analogue of BuildDBMSRepository.
func BuildHadoopRepository(o Options, exclude string) *tune.Repository {
	repo := &tune.Repository{}
	past := []*workload.MRJob{
		workload.WordCount(o.scaleGB(30, 3)),
		workload.TeraSort(o.scaleGB(30, 3)),
		workload.Aggregation(o.scaleGB(20, 2)),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	for i, job := range past {
		if job.Name == exclude {
			continue
		}
		target := HadoopTarget(job, o.Seed+int64(300+i))
		addSession(repo, target, "hadoop", job.Name, o.Seed+int64(30*i), trials)
	}
	return repo
}

func addSession(repo *tune.Repository, target tune.Target, system, name string, seed int64, trials int) {
	ctx := context.Background()
	var features map[string]float64
	if d, ok := target.(tune.Describer); ok {
		features = d.WorkloadFeatures()
	}
	it := experiment.NewITuned(seed + 1)
	r, err := it.Tune(ctx, target, tune.Budget{Trials: trials})
	if err != nil {
		panic(fmt.Sprintf("bench: repository session failed: %v", err))
	}
	repo.AddResult(system, name, features, r)
	rd := &experiment.Random{Seed: seed + 2}
	r2, err := rd.Tune(ctx, target, tune.Budget{Trials: trials / 2})
	if err != nil {
		panic(fmt.Sprintf("bench: repository session failed: %v", err))
	}
	repo.AddResult(system, name+"/explore", features, r2)
}
