package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// repoSession describes one synthetic past-tuning session to record: a
// tuner bound to its own target instance (sessions never share a target, so
// the scheduler can run them concurrently without entangling noise
// streams).
type repoSession struct {
	system, name string
	target       tune.Target
	tuner        tune.Tuner
	trials       int
}

// buildRepository runs the sessions on the scheduler and records them in
// order, so the repository contents are independent of parallelism.
func buildRepository(o Options, sessions []repoSession) *tune.Repository {
	jobs := make([]engine.Job, len(sessions))
	for i, s := range sessions {
		jobs[i] = engine.Job{Name: s.name, Tuner: s.tuner, Target: s.target, Budget: tune.Budget{Trials: s.trials}}
	}
	results := o.engine().RunJobs(context.Background(), jobs)
	repo := &tune.Repository{}
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("bench: repository session failed: %v", r.Err))
		}
		s := sessions[i]
		var features map[string]float64
		if d, ok := s.target.(tune.Describer); ok {
			features = d.WorkloadFeatures()
		}
		repo.AddResult(s.system, s.name, features, r.Result)
	}
	return repo
}

// sessionPair returns the standard exploratory + guided session pair for
// one past workload: an iTuned session and a random session, each on its
// own fresh target built by mk with a distinct seed offset — distinct so
// the two sessions' noise streams are independent, not copies.
func sessionPair(system, name string, mk func(ofs int64) tune.Target, seed int64, trials int) []repoSession {
	return []repoSession{
		{system, name, mk(0), experiment.NewITuned(seed + 1), trials},
		{system, name + "/explore", mk(5000), &experiment.Random{Seed: seed + 2}, trials / 2},
	}
}

// BuildDBMSRepository synthesizes a tuning repository from past sessions over
// DBMS workloads other than the one about to be tuned — the corpus
// OtterTune-style transfer requires. Each past workload contributes one
// exploratory session (random) and one guided session (iTuned).
func BuildDBMSRepository(o Options, exclude string) *tune.Repository {
	past := []*workload.DBWorkload{
		workload.TPCHLike(o.scaleGB(10, 2)),
		workload.OLTP(64, o.scaleGB(4, 1)),
		workload.MixedDB(o.scaleGB(6, 1.5)),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	var sessions []repoSession
	for i, wl := range past {
		if wl.Name == exclude {
			continue
		}
		wl := wl
		targetSeed := o.Seed + int64(100+i)
		mk := func(ofs int64) tune.Target { return DBMSTarget(wl, targetSeed+ofs) }
		sessions = append(sessions, sessionPair("dbms", wl.Name, mk, o.Seed+int64(10*i), trials)...)
	}
	return buildRepository(o, sessions)
}

// BuildSparkRepository is the Spark analogue of BuildDBMSRepository.
func BuildSparkRepository(o Options, exclude string) *tune.Repository {
	past := []*workload.SparkJob{
		workload.WordCountSpark(o.scaleGB(20, 2)),
		workload.TeraSortSpark(o.scaleGB(20, 2)),
		workload.PageRank(o.scaleGB(5, 1), 8),
		workload.KMeansSpark(o.scaleGB(8, 1), 10),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	var sessions []repoSession
	for i, job := range past {
		if job.Name == exclude {
			continue
		}
		job := job
		targetSeed := o.Seed + int64(200+i)
		mk := func(ofs int64) tune.Target { return SparkTarget(job, targetSeed+ofs) }
		sessions = append(sessions, sessionPair("spark", job.Name, mk, o.Seed+int64(20*i), trials)...)
	}
	return buildRepository(o, sessions)
}

// BuildHadoopRepository is the Hadoop analogue of BuildDBMSRepository.
func BuildHadoopRepository(o Options, exclude string) *tune.Repository {
	past := []*workload.MRJob{
		workload.WordCount(o.scaleGB(30, 3)),
		workload.TeraSort(o.scaleGB(30, 3)),
		workload.Aggregation(o.scaleGB(20, 2)),
	}
	trials := 20
	if o.Fast {
		trials = 8
	}
	var sessions []repoSession
	for i, job := range past {
		if job.Name == exclude {
			continue
		}
		job := job
		targetSeed := o.Seed + int64(300+i)
		mk := func(ofs int64) tune.Target { return HadoopTarget(job, targetSeed+ofs) }
		sessions = append(sessions, sessionPair("hadoop", job.Name, mk, o.Seed+int64(30*i), trials)...)
	}
	return buildRepository(o, sessions)
}
