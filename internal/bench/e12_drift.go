package bench

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// Drift measures tuning under workload drift — the scenario every static
// tuner in the survey silently assumes away. The target starts as an OLTP
// transaction mix and shifts to TPC-H-style analytics a third of the way
// through the budget (workload.Drift keyed by global run index, so the
// shift point is identical at any parallelism). Baseline iTuned keeps the
// incumbent it converged to on the pre-shift workload; drift-detecting
// iTuned (tune.DriftDetectTuner) notices the windowed incumbent regression,
// re-anchors the session, and restarts its search against the post-shift
// landscape.
//
// The headline metric is deployed regret-over-time: at every post-shift
// step, the configuration the session would deploy (its incumbent — the
// thing /status reports and an operator would ship) is evaluated against
// the ENDING workload, and the per-step mean is the regret. This is the
// standard dynamic-optimization framing: it charges the baseline for
// serving a stale config trial after trial, and charges the detector for
// its reaction latency and for any bad interim incumbents its restart
// promotes — but not for offline exploration it never deploys. Both
// variants share the seed, budget, and shift point; they differ only in
// whether anything reacts to the shift.
func Drift(o Options) *Table {
	t := &Table{
		Title: "E12 (drift): workload shift mid-session — static tuning vs drift detection (dbms oltp→olap)",
		Columns: []string{
			"approach", "trials", "detections", "final config on olap",
			"deployed regret/step", "regret reduction",
		},
	}
	b := o.budget()
	if b.Trials < 20 {
		// The shift lands a third of the way in; with fewer than ~7 trials
		// pre-shift neither variant has time to converge before drifting.
		b.Trials = 20
	}
	// Shift after the first third: drift detection pays a fixed reaction cost
	// (detection latency + a fresh design phase), so the comparison needs
	// enough post-shift runway for the recovered search to amortize it — the
	// regime the scenario is about. A shift in the final trials is
	// unrecoverable for any detector and measures nothing.
	shiftAt := int64(b.Trials / 3)
	scale := o.scaleGB(4, 2)

	// Each job owns its target (engine contract), so the drift schedule is
	// rebuilt per variant: OLTP for the first half of the budget, then
	// TPC-H-like analytics forever.
	node := cluster.CommodityNode()
	mkTarget := func() tune.Target {
		d, err := workload.NewDrift("oltp-olap-shift", false,
			workload.Phase{Name: "oltp", Target: dbms.New(node, workload.OLTP(64, scale), o.Seed), Runs: shiftAt},
			workload.Phase{Name: "olap", Target: dbms.New(node, workload.TPCHLike(scale*2), o.Seed), Runs: shiftAt},
		)
		if err != nil {
			panic(fmt.Sprintf("bench: building drift target: %v", err))
		}
		return d
	}
	variants := []struct {
		approach string
		tuner    tune.Tuner
	}{
		{"iTuned (no detection)", experiment.NewITuned(o.Seed)},
		{"iTuned + drift detection", tune.DriftDetectTuner(experiment.NewITuned(o.Seed), tune.DriftOptions{})},
	}
	eng := o.engine()
	runs := make([]*engine.Run, len(variants))
	for i, v := range variants {
		runs[i] = eng.Submit(engine.Job{
			Name:   v.approach,
			Tuner:  v.tuner,
			Target: mkTarget(),
			Budget: b,
		})
	}
	// A fresh pure-OLAP target scores deployed configs against the ending
	// workload; one evaluation per distinct config, cached, so the scoring
	// pass is deterministic and cheap.
	evalEnd := dbms.New(node, workload.TPCHLike(scale*2), o.Seed+999)
	cache := map[string]float64{}
	evalCfg := func(cfg tune.Config) float64 {
		k := cfg.String()
		if v, ok := cache[k]; ok {
			return v
		}
		v := evalEnd.Run(cfg).Objective()
		cache[k] = v
		return v
	}

	var baselineRegret float64
	for i, r := range runs {
		res, err := r.Wait(context.Background())
		if err != nil {
			panic(fmt.Sprintf("bench: drift session %s failed: %v", variants[i].approach, err))
		}
		_, _, detections := r.ScenarioProgress()
		// Re-anchor positions come from the event stream: DriftDetected
		// carries the trial count at the moment the incumbent was discarded.
		var anchors []int
		for _, ev := range r.History() {
			if ev.Kind == tune.DriftDetected {
				anchors = append(anchors, ev.Trial)
			}
		}
		regret, final := deployedRegret(res.Trials, anchors, int(shiftAt), evalCfg)
		reduction := "—"
		if i == 0 {
			baselineRegret = regret
		} else if baselineRegret > 0 {
			reduction = fmt.Sprintf("%.0f%%", 100*(baselineRegret-regret)/baselineRegret)
		}
		t.AddRow(variants[i].approach,
			fmt.Sprintf("%d", len(res.Trials)),
			fmt.Sprintf("%d", detections),
			fmtSeconds(final),
			fmtSeconds(regret), reduction)
	}
	t.Note("budget %d trials at seed %d; workload shifts oltp→olap at trial %d; regret = per-step runtime of the deployed incumbent on the ENDING workload, averaged over post-shift steps",
		b.Trials, o.Seed, shiftAt)
	t.Note("detection = windowed incumbent-regression test (window %d, factor %.1f); a detection re-anchors the incumbent and restarts the search with the remaining budget",
		tune.DriftOptions{}.WithDefaults().Window, tune.DriftOptions{}.WithDefaults().Factor)
	return t
}

// deployedRegret replays the session's incumbent trajectory — best observed
// objective since the last re-anchor, with the previously deployed config
// held across a re-anchor until a post-anchor trial lands (deployment
// continuity: an operator cannot run "nothing") — and scores the deployed
// config at every post-shift step on the ending workload via eval. It
// returns the per-step mean and the final deployed config's score.
func deployedRegret(trials []tune.Trial, anchors []int, shiftAt int, eval func(tune.Config) float64) (perStep, final float64) {
	best := math.Inf(1)
	var deployed tune.Config
	haveDeployed := false
	var sum float64
	steps, anchorIdx := 0, 0
	for _, tr := range trials {
		for anchorIdx < len(anchors) && tr.N > anchors[anchorIdx] {
			best = math.Inf(1) // incumbent discarded; deployed config persists
			anchorIdx++
		}
		if obj := tr.Result.Objective(); obj < best {
			best, deployed, haveDeployed = obj, tr.Config, true
		}
		if tr.N > shiftAt && haveDeployed {
			sum += eval(deployed)
			steps++
		}
	}
	if steps > 0 {
		perStep = sum / float64(steps)
	}
	if haveDeployed {
		final = eval(deployed)
	}
	return perStep, final
}
