package bench

import (
	"context"
	"fmt"

	"repro/internal/sysmodel/cluster"
	"repro/internal/tune"
	"repro/internal/tuners/costmodel"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/rulebased"
	"repro/internal/workload"
)

// Heterogeneity probes the paper's first open challenge (§2.5): tuning over
// heterogeneous hardware. Each approach tunes on a homogeneous cluster; the
// resulting configuration is then transplanted onto a heterogeneous fleet of
// equal aggregate capacity and compared with tuning directly on that fleet.
// Cost models suffer most — their homogeneity assumption is baked in — which
// is exactly the weakness Table 1 lists.
func Heterogeneity(o Options) *Table {
	t := &Table{
		Title: "E6 (§2.5-1): configuration transfer homogeneous → heterogeneous",
		Columns: []string{
			"approach", "homog tuned", "transplanted", "transfer loss",
			"retuned on hetero", "recovered",
		},
	}
	ctx := context.Background()
	gb := o.scaleGB(40, 4)
	b := o.budget()
	homog := cluster.Commodity(16)
	hetero := cluster.Heterogeneous(16)

	heteroDef := DefaultTime(HadoopTargetOn(hetero, workload.TeraSort(gb), o.Seed+71), 3)

	type approach struct {
		name  string
		tuner func(seed int64) tune.Tuner
	}
	approaches := []approach{
		{"rules", func(int64) tune.Tuner { return rulebased.NewTuner(rulebased.HadoopRules()) }},
		{"costmodel/starfish", func(seed int64) tune.Tuner { return costmodel.NewStarfish(seed) }},
		{"experiment/ituned", func(seed int64) tune.Tuner { return experiment.NewITuned(seed) }},
	}
	for i, a := range approaches {
		seed := o.Seed + int64(i+1)*101
		homogTarget := HadoopTargetOn(homog, workload.TeraSort(gb), seed+1)
		r, err := a.tuner(seed).Tune(ctx, homogTarget, b)
		if err != nil {
			t.AddRow(a.name, "err", "-", "-", "-", "-")
			continue
		}
		homogTime := r.BestResult.Time
		if len(r.Trials) == 0 {
			homogTime = homogTarget.Run(r.Best).Time
		}

		// Transplant the configuration onto the heterogeneous fleet.
		heteroTarget := HadoopTargetOn(hetero, workload.TeraSort(gb), seed+2)
		transplanted := averageRun(heteroTarget, r.Best, 3)

		// Retune natively on the heterogeneous fleet.
		retuneTarget := HadoopTargetOn(hetero, workload.TeraSort(gb), seed+3)
		r2, err := a.tuner(seed+4).Tune(ctx, retuneTarget, b)
		if err != nil {
			t.AddRow(a.name, fmtSeconds(homogTime), fmtSeconds(transplanted), "-", "err", "-")
			continue
		}
		retuned := r2.BestResult.Time
		if len(r2.Trials) == 0 {
			retuned = retuneTarget.Run(r2.Best).Time
		}

		t.AddRow(a.name,
			fmtSeconds(homogTime),
			fmtSeconds(transplanted),
			fmt.Sprintf("%+.0f%%", (transplanted/homogTime-1)*100),
			fmtSeconds(retuned),
			fmtSpeedup(speedup(transplanted, retuned)),
		)
	}
	t.Note("hetero default: %s; clusters have equal node count (16), mixed beefy/commodity/wimpy", fmtSeconds(heteroDef))
	t.Note("wave scheduling is paced by the weakest node; models assuming the first node's spec mispredict")
	return t
}

func averageRun(target tune.Target, cfg tune.Config, runs int) float64 {
	var s float64
	for i := 0; i < runs; i++ {
		s += target.Run(cfg).Time
	}
	return s / float64(runs)
}
