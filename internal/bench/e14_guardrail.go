package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

// GuardrailFactor sets the experiment's safety limit relative to the
// default configuration's runtime: a trial is a violation when it runs
// slower than this multiple of the default. The factor is deliberately
// BELOW 1: the default misses the workload's latency objective — that is
// why a tuning session is running at all — and the guardrail is that
// objective, so exploration must find configurations that meet it without
// serving ones that miss it even harder. (A limit above the default's
// runtime would only be crossed by out-of-memory cliffs, which are
// discontinuities no surrogate can predict from smooth samples; a limit in
// the smooth part of the landscape is exactly what a GP screen can learn.)
const GuardrailFactor = 0.7

// Guardrail measures safe exploration: the same tuner with and without the
// surrogate safety screen (tune.GuardrailTuner), both judged against the
// same objective guardrail (Scenario.Guardrail counts every full-fidelity
// trial over the limit and emits GuardrailViolation events). Unscreened
// iTuned explores wherever its design takes it, paying real violations to
// learn where the cliffs are; the screened variant releases one
// configuration per observation round-trip, vetoes anything its GP upper
// confidence bound or safe-set keep-outs flag, and recovers the vetoed
// candidates later by marching the safe set toward them step by step.
//
// The claim reproduced: the screen removes the violations without giving up
// the incumbent — equal-or-better best at zero violations. The screen's
// cold start (first GuardrailOptions.MinObs trials pass unscreened) is the
// documented residual risk; the violations column makes it visible rather
// than hiding it.
func Guardrail(o Options) *Table {
	t := &Table{
		Title: "E14 (guardrail): safe exploration under an objective limit (dbms/tpch)",
		Columns: []string{
			"approach", "trials", "violations", "worst trial",
			"best", "vs unguarded best",
		},
	}
	b := o.budget()
	if b.Trials < 16 {
		b.Trials = 16
	}
	scale := o.scaleGB(3, 2)

	// The limit derives from the default configuration on a probe target so
	// both sessions face the same number.
	probe := DBMSTarget(workload.TPCHLike(scale), o.Seed)
	limit := DefaultTime(probe, 3) * GuardrailFactor

	guarded, err := tune.GuardrailTuner(experiment.NewITuned(o.Seed), tune.GuardrailOptions{Limit: limit})
	if err != nil {
		panic(fmt.Sprintf("bench: building guardrail tuner: %v", err))
	}
	variants := []struct {
		approach string
		tuner    tune.Tuner
	}{
		{"iTuned (unguarded)", experiment.NewITuned(o.Seed)},
		{"iTuned + guardrail", guarded},
	}
	eng := o.engine()
	runs := make([]*engine.Run, len(variants))
	for i, v := range variants {
		runs[i] = eng.Submit(engine.Job{
			Name:      v.approach,
			Tuner:     v.tuner,
			Target:    DBMSTarget(workload.TPCHLike(scale), o.Seed),
			Budget:    b,
			Guardrail: limit, // both sessions judged against the same limit
		})
	}
	var baseBest float64
	for i, r := range runs {
		res, err := r.Wait(context.Background())
		if err != nil {
			panic(fmt.Sprintf("bench: guardrail session %s failed: %v", variants[i].approach, err))
		}
		_, violations, _ := r.ScenarioProgress()
		worst := 0.0
		for _, tr := range res.Trials {
			if obj := tr.Result.Objective(); obj > worst {
				worst = obj
			}
		}
		vs := "—"
		if i == 0 {
			baseBest = res.BestResult.Objective()
		} else if baseBest > 0 {
			vs = fmt.Sprintf("%+.1f%%", 100*(res.BestResult.Objective()-baseBest)/baseBest)
		}
		t.AddRow(variants[i].approach,
			fmt.Sprintf("%d", len(res.Trials)),
			fmt.Sprintf("%d", violations),
			fmtSeconds(worst),
			fmtSeconds(res.BestResult.Time),
			vs)
	}
	t.Note("budget %d trials each at seed %d; guardrail = %.1f× the default config's runtime (%s); violations counted by the session, not the tuner",
		b.Trials, o.Seed, GuardrailFactor, fmtSeconds(limit))
	t.Note("screen = Matérn-5/2 GP upper confidence bound + safe-set keep-outs, armed after %d observations; vetoed proposals are deferred and re-proposed once the safe set expands to cover them",
		tune.GuardrailOptions{}.WithDefaults().MinObs)
	return t
}
