package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", "v")
	tb.Note("footnote %d", 7)
	var out bytes.Buffer
	tb.Render(&out)
	s := out.String()
	for _, want := range []string{"=== demo ===", "longer", "footnote 7", "1.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q in:\n%s", want, s)
		}
	}
	var csvOut bytes.Buffer
	if err := tb.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvOut.String(), "a,bb\n") {
		t.Errorf("csv = %q", csvOut.String())
	}
}

func TestRegistryListsAllExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(exps))
	}
	names := map[string]bool{}
	for _, e := range exps {
		names[e.Name] = true
		if e.Doc == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	for _, want := range []string{"motivation", "table1", "table2", "hadoopgap", "sparkparams", "heterogeneity", "cloud", "realtime", "transfer", "fidelity", "surrogate", "drift", "pareto", "guardrail"} {
		if !names[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func fastOpts() Options { return Options{Seed: 1, Budget: 8, Fast: true} }

func TestMotivationFast(t *testing.T) {
	tb := Motivation(fastOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestHadoopGapFast(t *testing.T) {
	tb := HadoopGap(fastOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("gap column malformed: %v", row)
		}
	}
}

func TestRealtimeFast(t *testing.T) {
	tb := Realtime(fastOpts())
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestTable2Fast(t *testing.T) {
	tb := Table2(fastOpts())
	if len(tb.Rows) != 11 {
		t.Fatalf("Table 2 must have 11 approach rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if strings.Contains(row[4], "error") {
			t.Errorf("approach %s errored: %s", row[1], row[4])
		}
	}
}

func TestTable1Fast(t *testing.T) {
	tb := Table1(fastOpts())
	if len(tb.Rows) != 6 {
		t.Fatalf("Table 1 must have 6 category rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			if cell == "err" {
				t.Errorf("category %s has error cell: %v", row[0], row)
			}
		}
	}
}

func TestRepositoriesBuild(t *testing.T) {
	o := fastOpts()
	if repo := BuildDBMSRepository(o, "tpch"); len(repo.Sessions) == 0 {
		t.Error("dbms repo empty")
	}
	if repo := BuildHadoopRepository(o, ""); len(repo.Sessions) != 6 {
		t.Errorf("hadoop repo sessions = %d, want 6", len(repo.Sessions))
	}
	repo := BuildDBMSRepository(o, "oltp")
	for _, s := range repo.Sessions {
		if strings.HasPrefix(s.Workload, "oltp") {
			t.Error("excluded workload present in repo")
		}
	}
}

// TestTransferWarmBeatsCold pins the repository-reuse acceptance claim at
// the benchtab defaults (seed 42, budget 30, full scale — still fast on the
// simulators): the warm-started session reaches the cold run's incumbent in
// strictly fewer trials than the cold run itself needed, for both iTuned
// and OtterTune. Fast mode deliberately is not asserted: with 8-trial
// history sessions and a 12-trial budget there is too little knowledge to
// transfer, which is part of the story (DESIGN.md §10).
func TestTransferWarmBeatsCold(t *testing.T) {
	tb := Transfer(Options{Seed: 42, Budget: 30})
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	reach := func(row []string) int {
		if row[3] == "never" {
			return 0
		}
		var n int
		fmt.Sscanf(row[3], "%d", &n)
		return n
	}
	for i := 0; i < 4; i += 2 {
		cold, warm := tb.Rows[i], tb.Rows[i+1]
		if cold[1] != "cold" || warm[1] != "warm" || cold[0] != warm[0] {
			t.Fatalf("row structure wrong: %v / %v", cold, warm)
		}
		cr, wr := reach(cold), reach(warm)
		if wr == 0 || wr >= cr {
			t.Errorf("%s: warm reached the cold incumbent at trial %d, cold at %d — transfer did not help",
				cold[0], wr, cr)
		}
	}
}

// TestFidelityReachesIncumbentAtHalfCost pins the multi-fidelity
// acceptance claim at the benchtab defaults (seed 42, budget 30):
// Hyperband-iTuned reaches the full-fidelity run's final incumbent (within
// the experiment's 10% parity tolerance) at no more than half the
// evaluation cost the full-fidelity run spends in total — and the
// comparison is meaningful because every variant records its full trial
// budget.
func TestFidelityReachesIncumbentAtHalfCost(t *testing.T) {
	tb := Fidelity(Options{Seed: 42, Budget: 30})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	if tb.Rows[0][0] != "iTuned (full fidelity)" || tb.Rows[1][0] != "Hyperband-iTuned" {
		t.Fatalf("row structure wrong: %v", tb.Rows)
	}
	ratio := func(row []string) float64 {
		if row[7] == "—" {
			return -1
		}
		var pct float64
		fmt.Sscanf(row[7], "%f%%", &pct)
		return pct / 100
	}
	hb := ratio(tb.Rows[1])
	if hb < 0 {
		t.Fatalf("Hyperband never reached the full-fidelity incumbent: %v", tb.Rows[1])
	}
	if hb > 0.5 {
		t.Errorf("Hyperband reached the incumbent at %.0f%% of the full run's cost, want ≤ 50%%", 100*hb)
	}
	for _, row := range tb.Rows {
		if row[1] != "30" {
			t.Errorf("%s recorded %s trials, want the full budget of 30", row[0], row[1])
		}
	}
	// The multi-fidelity rows early-stopped real trials.
	for _, row := range tb.Rows[1:] {
		var pruned int
		fmt.Sscanf(row[3], "%d", &pruned)
		if pruned == 0 {
			t.Errorf("%s pruned no trials", row[0])
		}
	}
}

// TestSurrogateFast checks the E11 table's structure and its deterministic
// columns: every tier row is present at every n, the cheap tiers agree with
// the exact GP to a usable tolerance, and the exact row's speedup is exactly
// 1× (it is its own baseline). Wall-clock columns are only checked for shape
// — CI hosts are too noisy to assert on absolute timings here; the hard
// performance claims live in BenchmarkSurrogateFit and BENCH_pr6.json.
func TestSurrogateFast(t *testing.T) {
	tb := Surrogate(fastOpts())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 tiers × 2 sizes", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if !strings.HasSuffix(row[2], "ms") || !strings.HasSuffix(row[3], "ms") {
			t.Errorf("row %d timing columns malformed: %v", i, row)
		}
		if !strings.HasSuffix(row[5], "x") {
			t.Errorf("row %d speedup malformed: %v", i, row)
		}
		var rmse float64
		fmt.Sscanf(row[4], "%f", &rmse)
		switch {
		case i%3 == 0: // exact row: zero self-disagreement, unit speedup
			if rmse != 0 || row[5] != "1.00x" {
				t.Errorf("exact row self-comparison wrong: %v", row)
			}
		default: // sparse/rff rows approximate the exact posterior
			if rmse > 2.0 {
				t.Errorf("row %d disagrees with the exact GP (rmse %.3f): %v", i, rmse, row)
			}
		}
	}
}

// TestDriftDetectionReducesRegret pins the drift-scenario acceptance claim
// at the benchtab defaults (seed 42, budget 30): after the oltp→olap shift,
// the drift-detecting variant's deployed regret-over-time beats the
// no-detection baseline, and it actually detected something (the baseline,
// by construction, detects nothing).
func TestDriftDetectionReducesRegret(t *testing.T) {
	tb := Drift(Options{Seed: 42, Budget: 30})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	base, det := tb.Rows[0], tb.Rows[1]
	if base[2] != "0" {
		t.Errorf("baseline reported detections: %v", base)
	}
	var detections int
	fmt.Sscanf(det[2], "%d", &detections)
	if detections == 0 {
		t.Errorf("detector never fired: %v", det)
	}
	var reduction float64
	if _, err := fmt.Sscanf(det[5], "%f%%", &reduction); err != nil {
		t.Fatalf("regret reduction column malformed: %v", det)
	}
	if reduction <= 0 {
		t.Errorf("drift detection did not reduce deployed regret (reduction %.0f%%): base %v det %v",
			reduction, base, det)
	}
}

// TestParetoFrontDominates pins the multi-objective acceptance claim at the
// benchtab defaults (seed 42; the experiment raises the budget floor to 60):
// the weighted sweep's front dominates the single-objective session's — more
// normalized hypervolume AND an equal-or-better best latency, so the gain is
// not bought by giving up the corner a latency-only search optimizes.
func TestParetoFrontDominates(t *testing.T) {
	tb := Pareto(Options{Seed: 42, Budget: 30})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	single, multi := tb.Rows[0], tb.Rows[1]
	hv := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[6], "%f", &v); err != nil {
			t.Fatalf("hypervolume column malformed: %v", row)
		}
		return v
	}
	if hv(multi) <= hv(single) {
		t.Errorf("multi-objective front does not dominate: hv %.4f vs single %.4f", hv(multi), hv(single))
	}
	best := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[3], "%f", &v); err != nil {
			t.Fatalf("best latency column malformed: %v", row)
		}
		return v
	}
	// Both render in seconds at this scale; parse defensively anyway.
	if strings.HasSuffix(single[3], "s") && strings.HasSuffix(multi[3], "s") {
		if best(multi) > best(single) {
			t.Errorf("sweep gave up the latency corner: best %s vs single %s", multi[3], single[3])
		}
	}
}

// TestGuardrailZeroViolations pins the safety acceptance claim at the
// benchtab defaults (seed 42, budget 30): the screened session completes
// with ZERO guardrail violations while the unguarded one pays several, and
// the screen does not cost the incumbent — the guarded best is
// equal-or-better than the unguarded best.
func TestGuardrailZeroViolations(t *testing.T) {
	tb := Guardrail(Options{Seed: 42, Budget: 30})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	unguarded, guarded := tb.Rows[0], tb.Rows[1]
	var uv, gv int
	fmt.Sscanf(unguarded[2], "%d", &uv)
	fmt.Sscanf(guarded[2], "%d", &gv)
	if uv == 0 {
		t.Errorf("unguarded session saw no violations — the hazard vanished: %v", unguarded)
	}
	if gv != 0 {
		t.Errorf("guarded session violated the guardrail %d times: %v", gv, guarded)
	}
	var vs float64
	if _, err := fmt.Sscanf(guarded[5], "%f%%", &vs); err != nil {
		t.Fatalf("vs-unguarded column malformed: %v", guarded)
	}
	if vs > 0 {
		t.Errorf("guarded best is %.1f%% worse than unguarded, want equal-or-better", vs)
	}
}

func TestReferenceBeatsDefault(t *testing.T) {
	target := DBMSTarget(wlTPCH(2), 3)
	def := DefaultTime(target, 2)
	_, best := Reference(target, 3, 25)
	if best >= def {
		t.Errorf("reference %v should beat default %v", best, def)
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtSeconds(30) != "30.0s" || fmtSeconds(90) != "1.5m" || fmtSeconds(7200) != "2.0h" {
		t.Error("fmtSeconds wrong")
	}
	if fmtSpeedup(2) != "2.00x" {
		t.Error("fmtSpeedup wrong")
	}
	if speedup(10, 5) != 2 {
		t.Error("speedup wrong")
	}
}

func wlTPCH(gb float64) *workload.DBWorkload { return workload.TPCHLike(gb) }
