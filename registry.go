package repro

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/sysmodel/paralleldb"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/costmodel"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/tuners/rulebased"
	"repro/internal/tuners/simulation"
	"repro/internal/workload"
)

// TargetOptions controls target construction.
type TargetOptions struct {
	// ScaleGB is the input scale in GB (default: system-specific).
	ScaleGB float64 `json:"scale_gb,omitempty"`
	// Nodes is the cluster size for distributed systems (default 16).
	Nodes int `json:"nodes,omitempty"`
	// Heterogeneous selects a mixed node fleet.
	Heterogeneous bool `json:"heterogeneous,omitempty"`
	// TenantLoad adds multi-tenant background interference (0–0.9).
	TenantLoad float64 `json:"tenant_load,omitempty"`
	// FullSparkSpace exposes Spark's ~200-parameter surface.
	FullSparkSpace bool `json:"full_spark_space,omitempty"`
}

// validate rejects out-of-range options with descriptive errors. The
// negated comparisons also catch NaN.
func (o TargetOptions) validate() error {
	if !(o.ScaleGB >= 0) {
		return fmt.Errorf("repro: ScaleGB must be ≥ 0 GB (0 selects the system default), got %v", o.ScaleGB)
	}
	if o.Nodes < 0 {
		return fmt.Errorf("repro: Nodes must be ≥ 0 (0 selects the default of 16), got %d", o.Nodes)
	}
	if !(o.TenantLoad >= 0 && o.TenantLoad <= 0.9) {
		return fmt.Errorf("repro: TenantLoad must be within [0, 0.9] (fraction of each resource consumed by co-tenants), got %v", o.TenantLoad)
	}
	return nil
}

// TunerOptions controls tuner construction.
type TunerOptions struct {
	// Seed drives the tuner's randomness.
	Seed int64
	// Repo supplies past sessions to repository-based tuners (ottertune,
	// recommender); nil is allowed.
	Repo *Repository
	// TargetName helps rule-based tuners pick a rulebook ("dbms/tpch").
	TargetName string
	// Proxy is the scaled replica required by the "scaled-proxy" tuner.
	Proxy Target
	// Surrogate selects the GP surrogate tier for the model-based tuners
	// (ituned, ottertune); nil means auto with default thresholds.
	Surrogate *SurrogateSpec
}

// TargetFactory builds targets for one registered system.
type TargetFactory struct {
	// Workloads lists the workload names the system accepts. An empty
	// list declares an open-ended workload namespace: Spec validation
	// then defers workload checking to New.
	Workloads []string
	// New builds a target bound to the named workload. Options arrive
	// pre-validated (see TargetOptions); unknown workloads should return
	// a descriptive error.
	New func(workload string, seed int64, opts TargetOptions) (Target, error)
}

// TunerFactory builds one registered tuning approach.
type TunerFactory struct {
	// Category is the survey category the approach belongs to.
	Category string
	// Doc is a one-line description.
	Doc string
	// New builds the tuner.
	New func(TunerOptions) (Tuner, error)
}

// The registries. Builtins are registered at init; RegisterTarget and
// RegisterTuner let external systems and algorithms plug in by name, after
// which the whole facade — NewTarget/NewTuner, Spec/Start, and the HTTP
// daemon — accepts them like builtins.
var registry = struct {
	sync.RWMutex
	targetOrder []string
	targets     map[string]TargetFactory
	tuners      map[string]TunerFactory
}{
	targets: map[string]TargetFactory{},
	tuners:  map[string]TunerFactory{},
}

// RegisterTarget makes a system constructible by name through NewTarget
// and Spec. It errors on an empty name, a nil factory, or a name already
// registered.
func RegisterTarget(system string, f TargetFactory) error {
	if system == "" || f.New == nil {
		return fmt.Errorf("repro: RegisterTarget requires a system name and a New func")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.targets[system]; dup {
		return fmt.Errorf("repro: target system %q already registered", system)
	}
	registry.targetOrder = append(registry.targetOrder, system)
	registry.targets[system] = f
	return nil
}

// RegisterTuner makes a tuning approach constructible by name through
// NewTuner and Spec. It errors on an empty name, a nil constructor, or a
// name already registered.
func RegisterTuner(name, category, doc string, build func(TunerOptions) (Tuner, error)) error {
	if name == "" || build == nil {
		return fmt.Errorf("repro: RegisterTuner requires a tuner name and a build func")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.tuners[name]; dup {
		return fmt.Errorf("repro: tuner %q already registered", name)
	}
	registry.tuners[name] = TunerFactory{Category: category, Doc: doc, New: build}
	return nil
}

// Systems lists the systems NewTarget accepts, builtins first in their
// canonical order, then custom registrations in registration order.
func Systems() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.targetOrder))
	copy(out, registry.targetOrder)
	return out
}

// Workloads lists the workload names each system accepts.
func Workloads(system string) []string {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.targets[system]
	if !ok {
		return nil
	}
	out := make([]string, len(f.Workloads))
	copy(out, f.Workloads)
	return out
}

// NewTarget builds a simulated system bound to a named workload.
func NewTarget(system, wl string, seed int64, opts ...TargetOptions) (Target, error) {
	var o TargetOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	registry.RLock()
	f, ok := registry.targets[system]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("repro: unknown system %q (have %s)", system, strings.Join(Systems(), ", "))
	}
	return f.New(wl, seed, o)
}

// Tuners lists available tuner names with their survey category, sorted.
func Tuners() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.tuners))
	for n := range registry.tuners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TunerInfo returns the category and one-line description of a tuner.
func TunerInfo(name string) (category, doc string, ok bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.tuners[name]
	return f.Category, f.Doc, ok
}

// TunerNeedsRepository reports whether the named tuner consumes the
// materialized session corpus itself (TunerOptions.Repo) beyond what
// warm-start seeding needs. Builtins that ignore Repo return false, which
// lets callers skip loading every past session from a large store; external
// registrations are conservatively assumed to want the corpus.
func TunerNeedsRepository(name string) bool {
	for _, t := range builtinTuners {
		if t.name == name {
			return name == "ottertune" || name == "recommender"
		}
	}
	return true
}

// NewTuner builds a tuner by name.
func NewTuner(name string, o TunerOptions) (Tuner, error) {
	registry.RLock()
	f, ok := registry.tuners[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("repro: unknown tuner %q (have %s)", name, strings.Join(Tuners(), ", "))
	}
	return f.New(o)
}

// —— builtin targets ——————————————————————————————————————————————————————

// buildCluster realizes the fleet options shared by every builtin system.
func buildCluster(o TargetOptions) *cluster.Cluster {
	nodes := o.Nodes
	if nodes <= 0 {
		nodes = 16
	}
	var cl *cluster.Cluster
	if o.Heterogeneous {
		cl = cluster.Heterogeneous(nodes)
	} else {
		cl = cluster.Commodity(nodes)
	}
	if o.TenantLoad > 0 {
		cl = cl.MultiTenant(o.TenantLoad, o.TenantLoad/2)
	}
	return cl
}

func scaleOr(o TargetOptions, def float64) float64 {
	if o.ScaleGB > 0 {
		return o.ScaleGB
	}
	return def
}

func buildDBMS(wl string, seed int64, o TargetOptions) (Target, error) {
	var w *workload.DBWorkload
	switch wl {
	case "tpch":
		w = workload.TPCHLike(scaleOr(o, 10))
	case "oltp":
		w = workload.OLTP(64, scaleOr(o, 4))
	case "mixed":
		w = workload.MixedDB(scaleOr(o, 6))
	case "oltp-olap-shift", "diurnal":
		return buildDBMSDrift(wl, seed, o)
	default:
		return nil, fmt.Errorf("repro: unknown dbms workload %q (have %s)", wl, strings.Join(Workloads("dbms"), ", "))
	}
	d := dbms.New(cluster.CommodityNode(), w, seed)
	if o.TenantLoad > 0 {
		d.Tenant = buildCluster(o)
	}
	return d, nil
}

// buildDBMSDrift builds the time-varying DBMS workloads: every phase is an
// ordinary stationary dbms target (sharing one configuration space, since
// the system is the same) and the workload.Drift wrapper schedules trials
// across them by global run index.
//
//   - "oltp-olap-shift": 15 runs of OLTP traffic, then analytics forever —
//     a one-way workload change mid-session.
//   - "diurnal": alternating 8-run low-load and 8-run high-load OLTP
//     phases, repeating — cyclic load rather than a one-way shift.
func buildDBMSDrift(wl string, seed int64, o TargetOptions) (Target, error) {
	node := cluster.CommodityNode()
	mk := func(w *workload.DBWorkload) tune.ConcurrentTarget {
		d := dbms.New(node, w, seed)
		if o.TenantLoad > 0 {
			d.Tenant = buildCluster(o)
		}
		return d
	}
	switch wl {
	case "oltp-olap-shift":
		return workload.NewDrift(wl, false,
			workload.Phase{Name: "oltp", Target: mk(workload.OLTP(64, scaleOr(o, 4))), Runs: 15},
			workload.Phase{Name: "olap", Target: mk(workload.TPCHLike(scaleOr(o, 10))), Runs: 15},
		)
	case "diurnal":
		return workload.NewDrift(wl, true,
			workload.Phase{Name: "night", Target: mk(workload.OLTP(16, scaleOr(o, 4))), Runs: 8},
			workload.Phase{Name: "day", Target: mk(workload.OLTP(192, scaleOr(o, 4))), Runs: 8},
		)
	}
	return nil, fmt.Errorf("repro: unknown dbms drift workload %q", wl)
}

func mrJob(system, wl string, gb float64) (*workload.MRJob, error) {
	switch wl {
	case "grep":
		return workload.Grep(gb), nil
	case "aggregation":
		return workload.Aggregation(gb), nil
	case "join":
		return workload.JoinMR(gb), nil
	case "wordcount":
		return workload.WordCount(gb), nil
	case "terasort":
		return workload.TeraSort(gb), nil
	}
	return nil, fmt.Errorf("repro: unknown %s workload %q (have %s)", system, wl, strings.Join(Workloads(system), ", "))
}

func buildMR(system string) func(string, int64, TargetOptions) (Target, error) {
	return func(wl string, seed int64, o TargetOptions) (Target, error) {
		job, err := mrJob(system, wl, scaleOr(o, 20))
		if err != nil {
			return nil, err
		}
		if system == "paralleldb" {
			return paralleldb.New(buildCluster(o), job, seed), nil
		}
		return mapreduce.New(buildCluster(o), job, seed), nil
	}
}

func buildSpark(wl string, seed int64, o TargetOptions) (Target, error) {
	var job *workload.SparkJob
	switch wl {
	case "wordcount":
		job = workload.WordCountSpark(scaleOr(o, 20))
	case "terasort":
		job = workload.TeraSortSpark(scaleOr(o, 20))
	case "pagerank":
		job = workload.PageRank(scaleOr(o, 5), 8)
	case "kmeans":
		job = workload.KMeansSpark(scaleOr(o, 8), 10)
	case "streaming":
		job = workload.StreamingAgg(scaleOr(o, 2)*1024, 20, 10)
	default:
		return nil, fmt.Errorf("repro: unknown spark workload %q (have %s)", wl, strings.Join(Workloads("spark"), ", "))
	}
	cl := buildCluster(o)
	if o.FullSparkSpace {
		return spark.NewFull(cl, job, seed), nil
	}
	return spark.New(cl, job, seed), nil
}

// —— builtin tuners ———————————————————————————————————————————————————————

type builtinTuner struct {
	name, category, doc string
	build               func(TunerOptions) (Tuner, error)
}

var builtinTuners = []builtinTuner{
	{"rules", "rule-based", "best-practice rulebook for the target system", func(o TunerOptions) (Tuner, error) {
		book, err := rulebased.BookFor(o.TargetName)
		if err != nil {
			return nil, err
		}
		return rulebased.NewTuner(book), nil
	}},
	{"navigator", "rule-based", "impact-ranked one-at-a-time navigation (Xu et al.)", func(o TunerOptions) (Tuner, error) {
		return rulebased.NewNavigator(), nil
	}},
	{"stmm", "cost modeling", "memory cost-benefit balancing (Storm et al.)", func(o TunerOptions) (Tuner, error) {
		return costmodel.NewSTMM(), nil
	}},
	{"starfish", "cost modeling", "MapReduce what-if model + search (Herodotou & Babu)", func(o TunerOptions) (Tuner, error) {
		return costmodel.NewStarfish(o.Seed), nil
	}},
	{"ernest", "cost modeling", "scale-out NNLS model for Spark (Venkataraman et al.)", func(o TunerOptions) (Tuner, error) {
		return costmodel.NewErnest(), nil
	}},
	{"trace-whatif", "simulation", "trace capture + resource replay (Narayanan et al.)", func(o TunerOptions) (Tuner, error) {
		return simulation.NewTraceWhatIf(o.Seed), nil
	}},
	{"addm", "simulation", "wait-component diagnosis + targeted remedies (Dias et al.)", func(o TunerOptions) (Tuner, error) {
		return simulation.NewADDM(), nil
	}},
	{"scaled-proxy", "simulation", "search a scaled replica, verify at full scale", func(o TunerOptions) (Tuner, error) {
		if o.Proxy == nil {
			return nil, fmt.Errorf("repro: scaled-proxy requires TunerOptions.Proxy")
		}
		return simulation.NewScaledProxy(o.Proxy, o.Seed), nil
	}},
	{"random", "experiment-driven", "uniform random search baseline", func(o TunerOptions) (Tuner, error) {
		return &experiment.Random{Seed: o.Seed}, nil
	}},
	{"grid", "experiment-driven", "factorial grid over the top-impact knobs", func(o TunerOptions) (Tuner, error) {
		return &experiment.Grid{TopK: 3}, nil
	}},
	{"rrs", "experiment-driven", "recursive random search (Ye & Kalyanaraman)", func(o TunerOptions) (Tuner, error) {
		return &experiment.RRS{Seed: o.Seed}, nil
	}},
	{"sard", "experiment-driven", "Plackett–Burman screening + focused search (Debnath et al.)", func(o TunerOptions) (Tuner, error) {
		return experiment.NewSARD(o.Seed), nil
	}},
	{"adaptive-sampling", "experiment-driven", "explore/exploit experiment planning (Babu et al.)", func(o TunerOptions) (Tuner, error) {
		return experiment.NewAdaptiveSampling(o.Seed), nil
	}},
	{"ituned", "experiment-driven", "LHS + Gaussian process + EI (Duan et al.)", func(o TunerOptions) (Tuner, error) {
		t := experiment.NewITuned(o.Seed)
		t.Surrogate = o.Surrogate
		return t, nil
	}},
	{"ottertune", "machine learning", "metric pruning + Lasso + workload mapping + GP (Van Aken et al.)", func(o TunerOptions) (Tuner, error) {
		t := ml.NewOtterTune(o.Seed, o.Repo)
		t.Surrogate = o.Surrogate
		return t, nil
	}},
	{"neural", "machine learning", "MLP surrogate search (Rodd & Kulkarni)", func(o TunerOptions) (Tuner, error) {
		return ml.NewNeuralTuner(o.Seed), nil
	}},
	{"colt", "adaptive", "online cost-vs-gain epoch tuning (Schnaitter et al.)", func(o TunerOptions) (Tuner, error) {
		return adaptive.NewCOLT(o.Seed), nil
	}},
	{"partitions", "adaptive", "dynamic Spark partition control (Gounaris et al.)", func(o TunerOptions) (Tuner, error) {
		return &adaptive.AdaptiveTuner{Label: "partitions", Controller: adaptive.NewPartitionController()}, nil
	}},
	{"memory-manager", "adaptive", "online STMM memory rebalancing", func(o TunerOptions) (Tuner, error) {
		return &adaptive.AdaptiveTuner{Label: "memory-manager", Controller: adaptive.NewMemoryManager()}, nil
	}},
	{"recommender", "adaptive", "repository warm start + online refinement (mrMoulder)", func(o TunerOptions) (Tuner, error) {
		return adaptive.NewRecommender(o.Seed, o.Repo), nil
	}},
}

func init() {
	mustNil := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	mustNil(RegisterTarget("dbms", TargetFactory{
		Workloads: []string{"tpch", "oltp", "mixed", "oltp-olap-shift", "diurnal"},
		New:       buildDBMS,
	}))
	mustNil(RegisterTarget("hadoop", TargetFactory{
		Workloads: []string{"grep", "aggregation", "join", "wordcount", "terasort"},
		New:       buildMR("hadoop"),
	}))
	mustNil(RegisterTarget("spark", TargetFactory{
		Workloads: []string{"wordcount", "terasort", "pagerank", "kmeans", "streaming"},
		New:       buildSpark,
	}))
	mustNil(RegisterTarget("paralleldb", TargetFactory{
		Workloads: []string{"grep", "aggregation", "join", "wordcount", "terasort"},
		New:       buildMR("paralleldb"),
	}))
	for _, t := range builtinTuners {
		mustNil(RegisterTuner(t.name, t.category, t.doc, t.build))
	}
}
