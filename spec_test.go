package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tune"
	"repro/internal/tune/store"
)

// TestSpecJSONRoundTrip: a fully populated spec survives encoding/json
// unchanged — the property that makes specs servable and recordable.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		System:   "spark",
		Workload: "terasort",
		Tuner:    "scaled-proxy",
		Seed:     1234,
		Budget:   Budget{Trials: 25, SimTime: 3600},
		Target: TargetOptions{
			ScaleGB: 80, Nodes: 32, Heterogeneous: true,
			TenantLoad: 0.3, FullSparkSpace: true,
		},
		Proxy:    &ProxySpec{ScaleGB: 4, Nodes: 4},
		Parallel: 4,
		Memo:     true,
		Fidelity: &FidelitySpec{Strategy: "hyperband", Min: 0.1, Eta: 2.5},
		Surrogate: &SurrogateSpec{
			Tier: "auto", SparseAbove: 200, RFFAbove: 2000,
			Inducing: 48, Features: 256,
		},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip changed the spec:\n  in:  %+v\n  out: %+v", spec, back)
	}
	// Wire names stay snake_case: remote clients program against them.
	for _, key := range []string{`"system"`, `"workload"`, `"tuner"`, `"seed"`, `"budget"`, `"trials"`, `"sim_time"`, `"scale_gb"`, `"tenant_load"`, `"full_spark_space"`, `"proxy"`, `"parallel"`, `"memo"`, `"fidelity"`, `"strategy"`, `"eta"`, `"surrogate"`, `"sparse_above"`, `"rff_above"`, `"inducing"`, `"features"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("spec JSON missing %s: %s", key, data)
		}
	}
}

// TestSpecValidate rejects unknown names and bad ranges with messages that
// name the offending field.
func TestSpecValidate(t *testing.T) {
	ok := Spec{System: "dbms", Workload: "tpch", Tuner: "ituned", Budget: Budget{Trials: 5}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Spec)
		want   string
	}{
		{func(s *Spec) { s.System = "nosuch" }, "unknown system"},
		{func(s *Spec) { s.Workload = "nosuch" }, "unknown dbms workload"},
		{func(s *Spec) { s.Tuner = "nosuch" }, "unknown tuner"},
		{func(s *Spec) { s.Budget.Trials = -1 }, "trials"},
		{func(s *Spec) { s.Budget.SimTime = -2 }, "sim_time"},
		{func(s *Spec) { s.Budget = Budget{} }, "requires budget.trials > 0"},
		{func(s *Spec) { s.Budget = Budget{Trials: 0, SimTime: 100} }, "requires budget.trials > 0"},
		{func(s *Spec) { s.Parallel = -1 }, "parallel"},
		{func(s *Spec) { s.Target.TenantLoad = 0.95 }, "TenantLoad"},
		{func(s *Spec) { s.Proxy = &ProxySpec{ScaleGB: 0} }, "proxy"},
		{func(s *Spec) { s.Fidelity = &FidelitySpec{Strategy: "nosuch"} }, "fidelity strategy"},
		{func(s *Spec) { s.Fidelity = &FidelitySpec{Min: -0.5} }, "fidelity min"},
		{func(s *Spec) { s.Fidelity = &FidelitySpec{Min: 1.5} }, "fidelity min"},
		{func(s *Spec) { s.Fidelity = &FidelitySpec{Eta: 1.01} }, "fidelity eta"},
		{func(s *Spec) { s.Fidelity = &FidelitySpec{Eta: 50} }, "fidelity eta"},
		{func(s *Spec) { s.Surrogate = &SurrogateSpec{Tier: "kriging"} }, "unknown surrogate tier"},
		{func(s *Spec) { s.Surrogate = &SurrogateSpec{SparseAbove: -3} }, "non-negative"},
		{func(s *Spec) { s.Surrogate = &SurrogateSpec{SparseAbove: 500, RFFAbove: 100} }, "rff_above"},
	}
	for _, c := range cases {
		spec := ok
		c.mutate(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", spec, err, c.want)
		}
	}
}

// TestNewTargetValidation is the facade-hardening satellite: out-of-range
// options are rejected with descriptive errors instead of being accepted
// silently.
func TestNewTargetValidation(t *testing.T) {
	cases := []struct {
		opts TargetOptions
		want string
	}{
		{TargetOptions{TenantLoad: -0.1}, "TenantLoad"},
		{TargetOptions{TenantLoad: 0.91}, "TenantLoad"},
		{TargetOptions{ScaleGB: -1}, "ScaleGB"},
		{TargetOptions{Nodes: -2}, "Nodes"},
	}
	for _, c := range cases {
		_, err := NewTarget("dbms", "tpch", 1, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("NewTarget(%+v) = %v, want error containing %q", c.opts, err, c.want)
		}
	}
	// The documented edge of the range is accepted.
	if _, err := NewTarget("dbms", "tpch", 1, TargetOptions{TenantLoad: 0.9, ScaleGB: 1}); err != nil {
		t.Errorf("TenantLoad 0.9 should be accepted: %v", err)
	}
}

// TestStartMatchesBlockingTune is the first acceptance criterion: for a
// fixed spec and seed the session-handle path produces the same final
// result as the blocking string-constructor path.
func TestStartMatchesBlockingTune(t *testing.T) {
	spec := Spec{
		System: "dbms", Workload: "tpch", Tuner: "ituned",
		Seed: 7, Budget: Budget{Trials: 12},
		Target: TargetOptions{ScaleGB: 2},
	}
	run, err := Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	handle, err := run.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}

	target, err := NewTarget(spec.System, spec.Workload, spec.Seed, spec.Target)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(spec.Tuner, TunerOptions{Seed: spec.Seed, TargetName: target.Name()})
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := Tune(context.Background(), target, tn, spec.Budget, 1)
	if err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(handle)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(blocking)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("handle and blocking results differ:\n  handle:   %s\n  blocking: %s", a, b)
	}
}

// TestStartEventStreamDeterministicAcrossParallel is the second acceptance
// criterion: the TrialDone event sequence is byte-identical at parallel 1
// and parallel 4 for the same spec and seed.
func TestStartEventStreamDeterministicAcrossParallel(t *testing.T) {
	stream := func(parallel int) [][]byte {
		spec := Spec{
			System: "dbms", Workload: "tpch", Tuner: "ituned",
			Seed: 21, Budget: Budget{Trials: 14},
			Target:   TargetOptions{ScaleGB: 2},
			Parallel: parallel,
		}
		run, err := Start(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var done [][]byte
		for ev := range run.Events() {
			if ev.Kind != TrialDone {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			done = append(done, data)
		}
		if _, err := run.Wait(nil); err != nil {
			t.Fatal(err)
		}
		return done
	}
	seq := stream(1)
	par := stream(4)
	if len(seq) == 0 || len(seq) != len(par) {
		t.Fatalf("trial_done counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("trial_done %d differs:\n  parallel 1: %s\n  parallel 4: %s", i, seq[i], par[i])
		}
	}
}

// TestScenarioEventStreamsDeterministicAcrossParallel extends the stream
// determinism guarantee to the scenario classes: for drift detection,
// Pareto tracking, and guardrail screening, the observation-ordered event
// stream (TrialDone plus every scenario event) is byte-identical at
// parallel 1 and parallel 4. This is the property that makes scenario
// sessions replayable and their /events streams safe to diff across
// deployments.
func TestScenarioEventStreamsDeterministicAcrossParallel(t *testing.T) {
	specs := map[string]Spec{
		"drift": {
			System: "dbms", Workload: "oltp-olap-shift", Tuner: "ituned",
			Seed: 11, Budget: Budget{Trials: 24},
			Target:      TargetOptions{ScaleGB: 2},
			DriftDetect: true,
		},
		"pareto": {
			System: "dbms", Workload: "tpch", Tuner: "ituned",
			Seed: 11, Budget: Budget{Trials: 20},
			Target: TargetOptions{ScaleGB: 2},
			Pareto: true,
		},
		"guardrail": {
			System: "dbms", Workload: "tpch", Tuner: "ituned",
			Seed: 11, Budget: Budget{Trials: 16},
			Target: TargetOptions{ScaleGB: 2},
			// Tight enough that the screen's unscreened cold start violates
			// (the golden needs scenario events to compare), loose enough
			// that safe anchors exist for the screen to work from.
			Guardrail: 100,
		},
	}
	ordered := map[EventKind]bool{
		TrialDone:               true,
		tune.ParetoIncumbent:    true,
		tune.GuardrailViolation: true,
		tune.DriftDetected:      true,
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			stream := func(parallel int) [][]byte {
				s := spec
				s.Parallel = parallel
				run, err := Start(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				var evs [][]byte
				scenarioSeen := false
				for ev := range run.Events() {
					if !ordered[ev.Kind] {
						continue
					}
					if ev.Kind != TrialDone {
						scenarioSeen = true
					}
					data, err := json.Marshal(ev)
					if err != nil {
						t.Fatal(err)
					}
					evs = append(evs, data)
				}
				if _, err := run.Wait(nil); err != nil {
					t.Fatal(err)
				}
				if !scenarioSeen {
					t.Fatalf("%s session emitted no scenario events — the golden would be vacuous", name)
				}
				return evs
			}
			seq := stream(1)
			par := stream(4)
			if len(seq) == 0 || len(seq) != len(par) {
				t.Fatalf("event counts: %d vs %d", len(seq), len(par))
			}
			for i := range seq {
				if !bytes.Equal(seq[i], par[i]) {
					t.Fatalf("event %d differs:\n  parallel 1: %s\n  parallel 4: %s", i, seq[i], par[i])
				}
			}
		})
	}
}

// —— registry plug-ins ————————————————————————————————————————————————————

// flatTarget is a minimal external system: quadratic bowl around a=0.7.
type flatTarget struct {
	space *tune.Space
	seed  int64
}

func (f *flatTarget) Name() string       { return "customsys/bowl" }
func (f *flatTarget) Space() *tune.Space { return f.space }
func (f *flatTarget) Run(cfg tune.Config) tune.Result {
	d := cfg.Float("a") - 0.7
	return tune.Result{Time: 1 + d*d}
}

// fixedTuner is a minimal external algorithm: it evaluates a fixed ladder
// of configurations through a session.
type fixedTuner struct{ seed int64 }

func (f *fixedTuner) Name() string { return "custom/fixed" }
func (f *fixedTuner) Tune(ctx context.Context, target tune.Target, b tune.Budget) (*tune.TuningResult, error) {
	s := tune.NewSession(ctx, target, b)
	for _, a := range []float64{0.1, 0.5, 0.7, 0.9} {
		if _, err := s.Run(target.Space().Default().With("a", a)); err != nil {
			if err == tune.ErrBudgetExhausted {
				break
			}
			return nil, err
		}
	}
	return s.Finish(f.Name(), tune.Config{}), nil
}

// TestRegistriesPlugInByName registers an external system and tuner and
// drives them through the full declarative path: Spec → Start → events →
// result. This is the extension seam the daemon exposes to other systems.
func TestRegistriesPlugInByName(t *testing.T) {
	err := RegisterTarget("customsys", TargetFactory{
		Workloads: []string{"bowl"},
		New: func(wl string, seed int64, o TargetOptions) (Target, error) {
			return &flatTarget{space: tune.NewSpace(tune.Float("a", 0, 1, 0.5)), seed: seed}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterTuner("custom-fixed", "external", "fixed ladder probe", func(o TunerOptions) (Tuner, error) {
		return &fixedTuner{seed: o.Seed}, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Both registries now list the plug-ins.
	found := false
	for _, s := range Systems() {
		if s == "customsys" {
			found = true
		}
	}
	if !found {
		t.Error("customsys not listed in Systems()")
	}
	if cat, _, ok := TunerInfo("custom-fixed"); !ok || cat != "external" {
		t.Errorf("TunerInfo(custom-fixed) = %q, %v", cat, ok)
	}

	run, err := Start(context.Background(), Spec{
		System: "customsys", Workload: "bowl", Tuner: "custom-fixed",
		Seed: 1, Budget: Budget{Trials: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Errorf("custom session ran %d trials, want 4", len(res.Trials))
	}
	if got := res.Best.Float("a"); got != 0.7 {
		t.Errorf("best a = %v, want 0.7", got)
	}

	// A factory with no declared workload list accepts open-ended names:
	// Spec validation defers to the factory, like NewTarget does.
	if err := RegisterTarget("customopen", TargetFactory{
		New: func(wl string, seed int64, o TargetOptions) (Target, error) {
			return &flatTarget{space: tune.NewSpace(tune.Float("a", 0, 1, 0.5)), seed: seed}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	openSpec := Spec{System: "customopen", Workload: "anything-goes", Tuner: "custom-fixed", Budget: Budget{Trials: 1}}
	if err := openSpec.Validate(); err != nil {
		t.Errorf("open workload namespace rejected: %v", err)
	}

	// Duplicate and malformed registrations are rejected.
	if err := RegisterTarget("customsys", TargetFactory{New: func(string, int64, TargetOptions) (Target, error) { return nil, nil }}); err == nil {
		t.Error("duplicate RegisterTarget should error")
	}
	if err := RegisterTuner("custom-fixed", "x", "y", func(TunerOptions) (Tuner, error) { return nil, nil }); err == nil {
		t.Error("duplicate RegisterTuner should error")
	}
	if err := RegisterTarget("", TargetFactory{}); err == nil {
		t.Error("empty RegisterTarget should error")
	}
	if err := RegisterTuner("", "", "", nil); err == nil {
		t.Error("empty RegisterTuner should error")
	}
}

// TestSpecRepositoryLifecycle drives the facade's durable-repository path:
// Start with Spec.Repository archives the finished session into the
// directory; a later warm-started session loads that history, transfers
// seed configurations, and archives itself too.
func TestSpecRepositoryLifecycle(t *testing.T) {
	dir := t.TempDir()
	run, err := Start(context.Background(), Spec{
		System: "spark", Workload: "kmeans", Tuner: "ituned",
		Seed: 3, Budget: Budget{Trials: 8}, Repository: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(nil); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 ||
		got[0].Record.System != "spark" || got[0].Record.Workload != "kmeans" ||
		len(got[0].Record.Trials) != 8 {
		t.Fatalf("archived state wrong: %+v", got)
	}
	st.Close()

	warm, err := Start(context.Background(), Spec{
		System: "spark", Workload: "pagerank", Tuner: "ituned",
		Seed: 4, Budget: Budget{Trials: 8}, Target: TargetOptions{ScaleGB: 1},
		Repository: dir, WarmStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := warm.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The first WarmSeeds trials are the transferred configurations: they
	// must equal the best trials of the archived kmeans session.
	st, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sessions, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 2 {
		t.Fatalf("warm session not archived: %d records", len(sessions))
	}
	target, err := NewTarget("spark", "pagerank", 4, TargetOptions{ScaleGB: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the corpus the warm session saw: only the kmeans record
	// existed when it was submitted (its own archive came later).
	histOnly := &Repository{}
	histOnly.Add(sessions[0].Record)
	seeds := tune.WarmConfigs(histOnly, "spark", nil, target.Space(), WarmSeeds)
	// (nil features: with a single compatible session the mapping has one
	// candidate regardless of features.)
	if len(seeds) != WarmSeeds {
		t.Fatalf("transferred %d seeds, want %d", len(seeds), WarmSeeds)
	}
	for i := 0; i < WarmSeeds; i++ {
		if res.Trials[i].Config.String() != seeds[i].String() {
			t.Errorf("trial %d is not transferred seed %d:\n  got  %s\n  want %s",
				i+1, i, res.Trials[i].Config, seeds[i])
		}
	}
}

// TestSpecWarmStartRequiresAskTell: warm-starting a tuner with no proposer
// form fails with a descriptive error at materialization.
func TestSpecWarmStartRequiresAskTell(t *testing.T) {
	_, err := Spec{
		System: "dbms", Workload: "tpch", Tuner: "rrs",
		Seed: 1, Budget: Budget{Trials: 2}, WarmStart: true,
	}.Job()
	if err == nil || !strings.Contains(err.Error(), "ask/tell") {
		t.Fatalf("err = %v, want an ask/tell explanation", err)
	}
	// Without WarmStart the same tuner materializes fine.
	if _, err := (Spec{
		System: "dbms", Workload: "tpch", Tuner: "rrs",
		Seed: 1, Budget: Budget{Trials: 2},
	}).Job(); err != nil {
		t.Fatalf("rrs without warm start: %v", err)
	}
	// Warm start over an empty corpus degrades to cold, not to an error.
	if _, err := (Spec{
		System: "dbms", Workload: "tpch", Tuner: "ituned",
		Seed: 1, Budget: Budget{Trials: 2}, WarmStart: true,
	}).Job(); err != nil {
		t.Fatalf("warm start without history: %v", err)
	}
}

// TestSpecFidelityMaterialization: a fidelity spec needs an ask/tell tuner;
// builtin targets all expose a fidelity path, and the materialized job runs
// the wrapped hyperband tuner.
func TestSpecFidelityMaterialization(t *testing.T) {
	_, err := Spec{
		System: "dbms", Workload: "tpch", Tuner: "rrs",
		Seed: 1, Budget: Budget{Trials: 22}, Fidelity: &FidelitySpec{},
	}.Job()
	if err == nil || !strings.Contains(err.Error(), "ask/tell") {
		t.Fatalf("err = %v, want an ask/tell explanation", err)
	}
	job, err := Spec{
		System: "spark", Workload: "pagerank", Tuner: "ituned",
		Seed: 1, Budget: Budget{Trials: 22}, Target: TargetOptions{ScaleGB: 1},
		Fidelity: &FidelitySpec{Strategy: "halving"},
	}.Job()
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Tuner.Name(); got != "halving(experiment/ituned)" {
		t.Errorf("fidelity job tuner = %q", got)
	}
	// Every builtin system's target supports the fidelity path.
	for _, tc := range []struct{ system, wl string }{
		{"dbms", "tpch"}, {"hadoop", "terasort"}, {"spark", "kmeans"}, {"paralleldb", "grep"},
	} {
		target, err := NewTarget(tc.system, tc.wl, 1, TargetOptions{ScaleGB: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := target.(FidelityTarget); !ok {
			t.Errorf("%s target has no fidelity path", tc.system)
		}
	}
}
