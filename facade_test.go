package repro

import (
	"context"
	"testing"

	"repro/internal/tune"
)

func TestNewTargetAllSystems(t *testing.T) {
	for _, sys := range Systems() {
		for _, wl := range Workloads(sys) {
			target, err := NewTarget(sys, wl, 1, TargetOptions{ScaleGB: 1, Nodes: 4})
			if err != nil {
				t.Errorf("NewTarget(%s, %s): %v", sys, wl, err)
				continue
			}
			res := target.Run(target.Space().Default())
			if res.Time <= 0 {
				t.Errorf("%s/%s: non-positive runtime", sys, wl)
			}
		}
	}
}

func TestNewTargetErrors(t *testing.T) {
	if _, err := NewTarget("nosuch", "x", 1); err == nil {
		t.Error("unknown system should error")
	}
	if _, err := NewTarget("dbms", "nosuch", 1); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestNewTargetOptions(t *testing.T) {
	full, err := NewTarget("spark", "wordcount", 1, TargetOptions{FullSparkSpace: true, Nodes: 4, ScaleGB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Space().Dim() < 100 {
		t.Errorf("full spark space dim = %d", full.Space().Dim())
	}
	hetero, err := NewTarget("hadoop", "grep", 1, TargetOptions{Heterogeneous: true, Nodes: 4, ScaleGB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hetero.Run(hetero.Space().Default()).Time <= 0 {
		t.Error("hetero target should run")
	}
	noisy, err := NewTarget("dbms", "oltp", 1, TargetOptions{TenantLoad: 0.5, ScaleGB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Run(noisy.Space().Default()).Time <= 0 {
		t.Error("tenant target should run")
	}
}

func TestNewTunerAll(t *testing.T) {
	for _, name := range Tuners() {
		cat, doc, ok := TunerInfo(name)
		if !ok || cat == "" || doc == "" {
			t.Errorf("TunerInfo(%q) incomplete", name)
		}
		opts := TunerOptions{Seed: 1, TargetName: "dbms/tpch"}
		if name == "scaled-proxy" {
			proxy, _ := NewTarget("dbms", "tpch", 2, TargetOptions{ScaleGB: 0.5})
			opts.Proxy = proxy
		}
		if _, err := NewTuner(name, opts); err != nil {
			t.Errorf("NewTuner(%q): %v", name, err)
		}
	}
	if _, err := NewTuner("nosuch", TunerOptions{}); err == nil {
		t.Error("unknown tuner should error")
	}
	if _, err := NewTuner("scaled-proxy", TunerOptions{}); err == nil {
		t.Error("scaled-proxy without proxy should error")
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	target, err := NewTarget("dbms", "tpch", 5, TargetOptions{ScaleGB: 2})
	if err != nil {
		t.Fatal(err)
	}
	def := target.Run(target.Space().Default())
	tn, err := NewTuner("ituned", TunerOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tn.Tune(context.Background(), target, tune.Budget{Trials: 15})
	if err != nil {
		t.Fatal(err)
	}
	if r.BestResult.Time >= def.Time {
		t.Errorf("tuning did not improve: %v vs %v", r.BestResult.Time, def.Time)
	}
}
