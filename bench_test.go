package repro

// One benchmark per paper artifact (see DESIGN.md §3 and EXPERIMENTS.md):
// each regenerates the corresponding table/claim with fast options and
// reports headline numbers as benchmark metrics, plus ablation benches for
// the design choices the tuning algorithms make. Run with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/mathx/gp"
	"repro/internal/mathx/linalg"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/dbms"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/tuners/ml"
	"repro/internal/workload"
)

func benchOpts(i int) bench.Options {
	return bench.Options{Seed: int64(42 + i), Budget: 12, Fast: true}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(name, benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMotivation regenerates E1 (§1): misconfiguration degradation and
// tuning headroom.
func BenchmarkMotivation(b *testing.B) { runExperiment(b, "motivation") }

// BenchmarkTable1 regenerates E2: the six-category comparison of Table 1.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates E3: the eleven DBMS approaches of Table 2.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkHadoopGap regenerates E4 (§2.3): the 3.1–6.5× parallel-DB gap.
func BenchmarkHadoopGap(b *testing.B) { runExperiment(b, "hadoopgap") }

// BenchmarkSparkParams regenerates E5 (§2.4): ~30 of ~200 Spark parameters.
func BenchmarkSparkParams(b *testing.B) { runExperiment(b, "sparkparams") }

// BenchmarkHeterogeneity regenerates E6 (§2.5-1): transfer across hardware.
func BenchmarkHeterogeneity(b *testing.B) { runExperiment(b, "heterogeneity") }

// BenchmarkCloud regenerates E7 (§2.5-2): multi-tenant noise + provisioning.
func BenchmarkCloud(b *testing.B) { runExperiment(b, "cloud") }

// BenchmarkRealtime regenerates E8 (§2.5-3): streaming latency, static vs
// adaptive.
func BenchmarkRealtime(b *testing.B) { runExperiment(b, "realtime") }

// ---------------------------------------------------------------------------
// Ablations: design choices DESIGN.md calls out, measured.

func ablationTarget(seed int64) *dbms.DBMS {
	return dbms.New(cluster.CommodityNode(), workload.TPCHLike(2), seed)
}

// BenchmarkAblationAcquisition compares iTuned's EI-driven planning against
// pure random search at equal budget: the value of the GP.
func BenchmarkAblationAcquisition(b *testing.B) {
	for _, planned := range []bool{true, false} {
		name := "random"
		if planned {
			name = "gp-ei"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				target := ablationTarget(int64(100 + i))
				var tn tune.Tuner
				if planned {
					tn = experiment.NewITuned(int64(i))
				} else {
					tn = &experiment.Random{Seed: int64(i)}
				}
				r, err := tn.Tune(context.Background(), target, tune.Budget{Trials: 15})
				if err != nil {
					b.Fatal(err)
				}
				total += r.BestResult.Time
			}
			b.ReportMetric(total/float64(b.N), "best-runtime-s")
		})
	}
}

// BenchmarkAblationInitDesign compares LHS initialization against uniform
// random initialization inside iTuned.
func BenchmarkAblationInitDesign(b *testing.B) {
	for _, lhs := range []bool{true, false} {
		name := "uniform-init"
		if lhs {
			name = "lhs-init"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				target := ablationTarget(int64(200 + i))
				it := experiment.NewITuned(int64(i))
				if !lhs {
					it.InitLHS = 1 // degenerate design ≈ no space-filling phase
				}
				r, err := it.Tune(context.Background(), target, tune.Budget{Trials: 15})
				if err != nil {
					b.Fatal(err)
				}
				total += r.BestResult.Time
			}
			b.ReportMetric(total/float64(b.N), "best-runtime-s")
		})
	}
}

// BenchmarkAblationWorkloadMapping compares OtterTune with and without a
// repository: the value of transfer.
func BenchmarkAblationWorkloadMapping(b *testing.B) {
	repo := bench.BuildDBMSRepository(bench.Options{Seed: 1, Fast: true}, "tpch")
	for _, withRepo := range []bool{true, false} {
		name := "cold"
		if withRepo {
			name = "with-repo"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				target := ablationTarget(int64(300 + i))
				var r *tune.Repository
				if withRepo {
					r = repo
				}
				ot := ml.NewOtterTune(int64(i), r)
				res, err := ot.Tune(context.Background(), target, tune.Budget{Trials: 15})
				if err != nil {
					b.Fatal(err)
				}
				total += res.BestResult.Time
			}
			b.ReportMetric(total/float64(b.N), "best-runtime-s")
		})
	}
}

// BenchmarkAblationGPKernel compares the Matérn 5/2 kernel against the
// squared exponential on the DBMS surface (cliffs favor rougher priors).
func BenchmarkAblationGPKernel(b *testing.B) {
	for _, kernel := range []gp.KernelKind{gp.Matern52, gp.SquaredExponential} {
		name := "matern52"
		if kernel == gp.SquaredExponential {
			name = "sqexp"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				target := ablationTarget(int64(400 + i))
				it := experiment.NewITuned(int64(i))
				it.Kernel = kernel
				r, err := it.Tune(context.Background(), target, tune.Budget{Trials: 15})
				if err != nil {
					b.Fatal(err)
				}
				total += r.BestResult.Time
			}
			b.ReportMetric(total/float64(b.N), "best-runtime-s")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (runs/sec), the
// practical budget ceiling for every experiment in this repository.
func BenchmarkSimulatorThroughput(b *testing.B) {
	targets := map[string]tune.Target{
		"dbms":   ablationTarget(1),
		"hadoop": bench.HadoopTarget(workload.TeraSort(4), 2),
		"spark":  bench.SparkTarget(workload.PageRank(1, 4), 3),
	}
	for name, target := range targets {
		b.Run(name, func(b *testing.B) {
			cfg := target.Space().Default()
			for i := 0; i < b.N; i++ {
				_ = target.Run(cfg)
			}
		})
	}
}

// surrogateTrainingSet samples n (config, runtime) pairs from the DBMS
// simulator for the surrogate-scaling benchmarks.
func surrogateTrainingSet(n int, seed int64) (xs [][]float64, ys []float64) {
	target := ablationTarget(seed)
	space := target.Space()
	rnd := randFor(seed)
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		cfg := space.Random(rnd)
		xs[i] = cfg.Vector()
		ys[i] = target.Run(cfg).Time
	}
	return xs, ys
}

// BenchmarkGPFit measures Gaussian-process fitting cost versus training size
// — the per-iteration overhead of model-guided tuning. Small sizes run the
// full per-round hyperparameter search the tuners pay below the exact-GP
// wall; n ≥ 200 fits with fixed hyperparameters (the same rule the tuners
// apply past their reoptimization horizon), isolating the O(n³)
// factorization growth the sparse/RFF tiers exist to avoid.
func BenchmarkGPFit(b *testing.B) {
	for _, n := range []int{20, 40, 60, 200, 500, 2000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			xs, ys := surrogateTrainingSet(n, 5)
			optimize := n <= 60
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := gp.New(gp.Matern52)
				if err := g.Fit(xs, ys, optimize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSurrogateFit compares the three surrogate tiers on identical
// training sets with fixed hyperparameters (optimize=false everywhere):
// pure conditioning cost, exact O(n³) vs sparse O(nm²) vs RFF O(nD²). The
// speedup section of BENCH_pr6.json is computed from these rows.
func BenchmarkSurrogateFit(b *testing.B) {
	tiers := []struct {
		name string
		make func() gp.Surrogate
	}{
		{"exact", func() gp.Surrogate { return gp.New(gp.Matern52) }},
		{"sparse", func() gp.Surrogate {
			s := gp.NewSparse(gp.Matern52)
			s.MaxInducing = 64
			return s
		}},
		{"rff", func() gp.Surrogate { return gp.NewRFF(gp.Matern52, 128, 1) }},
	}
	for _, tier := range tiers {
		for _, n := range []int{200, 500, 2000} {
			b.Run("tier="+tier.name+"/n="+strconv.Itoa(n), func(b *testing.B) {
				xs, ys := surrogateTrainingSet(n, 7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m := tier.make()
					if err := m.Fit(xs, ys, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBlockedCholesky compares the serial right-looking factorization
// against the blocked parallel one at sizes above parallelMinDim. On a
// single-CPU host the parallel path measures its scheduling overhead; the
// multi-core speedup argument is the critical-path estimate in DESIGN.md
// §12.
func BenchmarkBlockedCholesky(b *testing.B) {
	for _, n := range []int{256, 512} {
		a := linalg.New(n, n)
		rnd := randFor(int64(n))
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rnd.Float64() - 0.5
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			a.Add(i, i, float64(n))
		}
		l := linalg.New(n, n)
		b.Run("serial/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := linalg.CholeskyInto(a, l); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("parallel/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := linalg.ParallelCholeskyInto(a, l, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPAppend measures incremental conditioning on one new observation
// — the bordered-Cholesky append behind ReoptimizeEvery > 1 — against the
// O(n³) hyper-searched refit it replaces (BenchmarkGPFit at the same n).
func BenchmarkGPAppend(b *testing.B) {
	for _, n := range []int{20, 40, 60} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			target := ablationTarget(6)
			space := target.Space()
			var xs [][]float64
			var ys []float64
			rnd := space.Default()
			for i := 0; i <= n; i++ {
				rnd = space.Perturb(rnd, 0.3, randFor(int64(i)))
				xs = append(xs, rnd.Vector())
				ys = append(ys, target.Run(rnd).Time)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := gp.New(gp.Matern52)
				if err := g.Fit(xs[:n], ys[:n], true); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := g.Append(xs[n], ys[n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkITunedReoptimizeEvery compares full per-round hyperparameter
// search (the default, every=1) against incremental GP conditioning
// (every=5) over a whole tuning session.
func BenchmarkITunedReoptimizeEvery(b *testing.B) {
	for _, every := range []int{1, 5} {
		b.Run("every="+strconv.Itoa(every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				target := ablationTarget(int64(500 + i))
				it := experiment.NewITuned(int64(i))
				it.ReoptimizeEvery = every
				if _, err := it.Tune(context.Background(), target, tune.Budget{Trials: 30}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
