package repro

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// FuzzSpecJSONRoundTrip feeds arbitrary JSON at the daemon's spec wire
// format. Anything that decodes must stabilize after one encode cycle —
// the property that lets a recorded spec reproduce its session exactly —
// and must make the same Validate decision on both sides of the trip (a
// spec cannot become valid, or differently invalid, by being stored).
func FuzzSpecJSONRoundTrip(f *testing.F) {
	f.Add(`{"system":"dbms","workload":"tpch","tuner":"ituned","seed":42,"budget":{"trials":30}}`)
	f.Add(`{"system":"spark","workload":"pagerank","tuner":"ottertune","seed":7,` +
		`"budget":{"trials":20,"sim_time":500},"target":{"scale_gb":2,"nodes":8,` +
		`"heterogeneous":true,"tenant_load":0.3},"parallel":4,"memo":true}`)
	f.Add(`{"system":"hadoop","workload":"terasort","tuner":"scaled-proxy",` +
		`"budget":{"trials":5},"proxy":{"scale_gb":1,"nodes":4}}`)
	f.Add(`{"system":"spark","workload":"kmeans","tuner":"ituned",` +
		`"budget":{"trials":9},"repository":"/tmp/repo","warm_start":true}`)
	f.Add(`{"budget":{"trials":-1}}`)
	f.Fuzz(func(t *testing.T, data string) {
		var spec Spec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			return
		}
		if specHasNonFinite(spec) {
			return // JSON cannot carry NaN/Inf back out
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("decoded spec does not re-encode: %v", err)
		}
		var spec2 Spec
		if err := json.Unmarshal(out, &spec2); err != nil {
			t.Fatalf("re-encoded spec does not decode: %v\n%s", err, out)
		}
		out2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("encoding is not a fixpoint:\n  %s\n  %s", out, out2)
		}
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("round trip changed the spec:\n  first:  %+v\n  second: %+v", spec, spec2)
		}
		errA, errB := spec.Validate(), spec2.Validate()
		switch {
		case (errA == nil) != (errB == nil):
			t.Fatalf("validation disagrees across the trip: %v vs %v", errA, errB)
		case errA != nil && errA.Error() != errB.Error():
			t.Fatalf("validation errors differ: %q vs %q", errA, errB)
		}
	})
}

func specHasNonFinite(s Spec) bool {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(s.Budget.SimTime) || bad(s.Target.ScaleGB) || bad(s.Target.TenantLoad) {
		return true
	}
	if s.Proxy != nil && bad(s.Proxy.ScaleGB) {
		return true
	}
	return false
}
