#!/usr/bin/env bash
# soak.sh — load/survivability benchmark for the autotuned daemon.
#
# Boots one autotuned with a session cap, then drives it with autotune-soak:
# hundreds of concurrent sessions submitted, streamed to completion over SSE,
# and deleted, while the harness samples the daemon's RSS and measures
# submit→first-event latency. A final flood phase bursts submissions past
# -max-sessions to prove overload is shed with 429s, never 5xx or OOM.
#
# Usage:
#   scripts/soak.sh           full run (500 sessions) → BENCH_pr8.json
#   scripts/soak.sh short     CI smoke (50 sessions, tight gates, report
#                             to a temp dir only)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-full}
ADDR=127.0.0.1:8341

if [ "$MODE" = short ]; then
  SESSIONS=50 CONCURRENCY=25 TRIALS=4 MAX_SESSIONS=40 FLOOD=60
  P99_MS=5000 RSS_PEAK_MB=512 OUT=""
else
  SESSIONS=500 CONCURRENCY=120 TRIALS=4 MAX_SESSIONS=150 FLOOD=200
  P99_MS=10000 RSS_PEAK_MB=1024 OUT="BENCH_pr8.json"
fi

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/autotuned" ./cmd/autotuned
go build -o "$workdir/autotune-soak" ./cmd/autotune-soak

"$workdir/autotuned" -addr "$ADDR" -max-sessions "$MAX_SESSIONS" \
  -event-buffer 1024 >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!
pids+=($daemon_pid)

for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

report=${OUT:-$workdir/soak.json}
"$workdir/autotune-soak" \
  -url "http://$ADDR" \
  -sessions "$SESSIONS" -concurrency "$CONCURRENCY" -trials "$TRIALS" \
  -system dbms -workload tpch -tuner random \
  -daemon-pid "$daemon_pid" -flood "$FLOOD" \
  -assert-p99-ms "$P99_MS" -assert-rss-peak-mb "$RSS_PEAK_MB" \
  -out "$report"

# The flood must have been shed at the door: with SESSIONS deleted and the
# cap at MAX_SESSIONS, a burst of FLOOD concurrent POSTs has to trip it.
rejected=$(grep -o '"rejected": *[0-9]*' "$report" | head -1 | grep -o '[0-9]*')
if [ "${rejected:-0}" -eq 0 ]; then
  echo "FAIL: flood of $FLOOD submissions past -max-sessions=$MAX_SESSIONS drew no 429s" >&2
  exit 1
fi

# The daemon must still be alive and healthy after the beating.
curl -sf "http://$ADDR/healthz" | grep -q '"status":"ok"'

echo "soak passed ($MODE): $SESSIONS sessions, flood rejected=$rejected, report=$report"
