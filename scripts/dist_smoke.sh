#!/usr/bin/env bash
# dist_smoke.sh — end-to-end multi-process smoke for distributed evaluation.
#
# Launches two autotune-evaluator processes and runs the same fidelity
# session twice over HTTP: once against a local-only autotuned, once against
# an autotuned fronting the evaluator fleet. The two SSE event streams must
# be byte-identical — the determinism contract says where a trial ran is
# invisible in the recorded history — and the fleet must actually have
# evaluated trials (completed > 0 on /evaluators).
#
# Usage: scripts/dist_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LOCAL_ADDR=127.0.0.1:8331
FLEET_ADDR=127.0.0.1:8332
EV1_ADDR=127.0.0.1:8333
EV2_ADDR=127.0.0.1:8334
SPEC='{"system":"dbms","workload":"tpch","tuner":"ituned","seed":42,"budget":{"trials":16},"parallel":2,"fidelity":{"strategy":"hyperband"},"target":{"scale_gb":2}}'

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/autotuned" ./cmd/autotuned
go build -o "$workdir/autotune-evaluator" ./cmd/autotune-evaluator

wait_healthy() {
  for _ in $(seq 1 50); do
    curl -sf "http://$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "server on $1 never became healthy" >&2
  return 1
}

# run_session <daemon addr> <events out>: submit SPEC, stream its ordered
# event log to completion, and print the session id.
run_session() {
  local addr=$1 out=$2 id
  id=$(curl -sf -X POST "http://$addr/sessions" \
    -H 'Content-Type: application/json' -d "$SPEC" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  test -n "$id"
  curl -sfN --max-time 120 "http://$addr/sessions/$id/events" > "$out"
  echo "$id"
}

# The evaluator fleet.
"$workdir/autotune-evaluator" -addr "$EV1_ADDR" -workers 2 &
pids+=($!)
"$workdir/autotune-evaluator" -addr "$EV2_ADDR" -workers 2 &
pids+=($!)
wait_healthy "$EV1_ADDR"
wait_healthy "$EV2_ADDR"

# Reference run: local-only daemon.
"$workdir/autotuned" -addr "$LOCAL_ADDR" &
pids+=($!)
wait_healthy "$LOCAL_ADDR"
run_session "$LOCAL_ADDR" "$workdir/events-local.txt" >/dev/null

# Fleet run: same spec against a daemon leasing trials to both evaluators.
"$workdir/autotuned" -addr "$FLEET_ADDR" \
  -evaluators "http://$EV1_ADDR,http://$EV2_ADDR" &
pids+=($!)
wait_healthy "$FLEET_ADDR"
run_session "$FLEET_ADDR" "$workdir/events-fleet.txt" >/dev/null

grep -q "^event: trial_done" "$workdir/events-local.txt"
grep -q "^event: trial_pruned" "$workdir/events-local.txt"
grep -q "^event: session_done" "$workdir/events-local.txt"

if ! diff -u "$workdir/events-local.txt" "$workdir/events-fleet.txt"; then
  echo "FAIL: event streams diverge between local-only and fleet evaluation" >&2
  exit 1
fi

fleet=$(curl -sf "http://$FLEET_ADDR/evaluators")
echo "$fleet"
completed=$(echo "$fleet" | grep -o '"completed":[0-9]*' | awk -F: '{s += $2} END {print s + 0}')
if [ "$completed" -eq 0 ]; then
  echo "FAIL: fleet daemon finished the session without any remote evaluations" >&2
  exit 1
fi
echo "$fleet" | grep -q '"healthy":true'

events=$(grep -c '^event:' "$workdir/events-local.txt")
echo "dist smoke passed: $events events, byte-identical local vs 2-evaluator fleet"
