#!/usr/bin/env bash
# bench.sh — record the repository's headline performance numbers.
#
# Runs the surrogate-scaling benchmarks (exact/sparse/RFF fit cost, GP fit
# and append versus training size, serial vs blocked-parallel Cholesky) and
# writes a JSON file (default BENCH_pr6.json) with the raw ns/op plus two
# derived sections: "surrogate_speedup" (sparse and RFF fit over the exact
# GP at the same n — the tentpole claim is sparse ≥ 5× at n=500) and
# "blocked_cholesky" (parallel over serial at the same n; on a 1-CPU host
# this records scheduling overhead and the multi-core claim is the
# critical-path estimate in DESIGN.md §12).
#
# It then runs the repository-at-scale harness (bench_repo_test.go): open
# time, indexed NearestSession p50/p99 versus corpus size with the linear
# scan alongside, and GDSF-vs-unbounded memo hit rate, written to a second
# JSON file (default BENCH_pr9.json).
#
# Usage: scripts/bench.sh [output.json] [repo-output.json]
#   BENCHTIME=10x scripts/bench.sh       # more reps for quieter numbers
#   REPO_SIZES=10000 scripts/bench.sh    # quick repository smoke
#   REPO_SIZES=skip scripts/bench.sh     # surrogate benches only
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr6.json}"
repo_out="${2:-BENCH_pr9.json}"
benchtime="${BENCHTIME:-5x}"
repo_sizes="${REPO_SIZES:-10000,100000,1000000}"

raw=$(go test -run '^$' -bench 'BenchmarkGPFit|BenchmarkGPAppend|BenchmarkSurrogateFit|BenchmarkBlockedCholesky' -benchtime "$benchtime" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" -v ncpu="$(nproc)" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    cur[name] = $3
    curOrder[nc++] = name
  }
  END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpus\": %d,\n", ncpu
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < nc; i++)
      printf "    \"%s\": %s%s\n", curOrder[i], cur[curOrder[i]], i < nc-1 ? "," : ""
    printf "  },\n"
    printf "  \"surrogate_speedup\": {\n"
    split("200 500 2000", sizes, " ")
    sep = ""
    for (s = 1; s <= 3; s++) {
      n = sizes[s]
      exact = cur["BenchmarkSurrogateFit/tier=exact/n=" n]
      for (t = 1; t <= 2; t++) {
        tier = t == 1 ? "sparse" : "rff"
        v = cur["BenchmarkSurrogateFit/tier=" tier "/n=" n]
        if (exact > 0 && v > 0) {
          printf "%s    \"%s/n=%s\": %.2f", sep, tier, n, exact / v
          sep = ",\n"
        }
      }
    }
    printf "\n  },\n"
    printf "  \"blocked_cholesky\": {\n"
    split("256 512", cn, " ")
    sep = ""
    for (s = 1; s <= 2; s++) {
      n = cn[s]
      serial = cur["BenchmarkBlockedCholesky/serial/n=" n]
      par = cur["BenchmarkBlockedCholesky/parallel/n=" n]
      if (serial > 0 && par > 0) {
        printf "%s    \"parallel_speedup/n=%s\": %.2f", sep, n, serial / par
        sep = ",\n"
      }
    }
    printf "\n  }\n"
    printf "}\n"
  }' > "$out"
echo "wrote $out" >&2

if [ "$repo_sizes" != "skip" ]; then
  REPRO_REPO_BENCH_OUT="$repo_out" REPRO_REPO_BENCH_SIZES="$repo_sizes" \
    go test -run '^TestRepositoryBenchReport$' -count=1 -timeout 60m -v . >&2
  echo "wrote $repo_out" >&2
fi
