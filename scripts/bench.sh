#!/usr/bin/env bash
# bench.sh — record the repository's headline performance numbers.
#
# Runs the benchmarks the perf trajectory is tracked by (GP fitting and
# appending, the Table-1 harness, the GP-kernel ablation) and writes a JSON
# file (default BENCH_pr3.json) with three sections: current ns/op, the
# pre-PR3 baseline (embedded below so regeneration never loses the record),
# and the speedup of current over baseline where both exist.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=10x scripts/bench.sh     # more reps for quieter numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr3.json}"
benchtime="${BENCHTIME:-5x}"

# ns/op measured at the pre-PR3 tree (benchtime 5x, same host class);
# BenchmarkGPAppend did not exist before PR 3.
baseline='BenchmarkTable1 260176982
BenchmarkAblationGPKernel/matern52 4927406
BenchmarkAblationGPKernel/sqexp 5171192
BenchmarkGPFit/n=20 1515498
BenchmarkGPFit/n=40 5216130
BenchmarkGPFit/n=60 14859040'

raw=$(go test -run '^$' -bench 'BenchmarkGPFit|BenchmarkGPAppend|BenchmarkTable1$|BenchmarkAblationGPKernel' -benchtime "$benchtime" .)
printf '%s\n' "$raw" >&2

{
  printf '%s\n' "$raw"
  printf 'BASELINE\n'
  printf '%s\n' "$baseline"
} | awk -v benchtime="$benchtime" '
  /^BASELINE$/ { inBase = 1; next }
  inBase       { base[$1] = $2; order[nb++] = $1; next }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    cur[name] = $3
    curOrder[nc++] = name
  }
  END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"ns_per_op\": {\n"
    for (i = 0; i < nc; i++)
      printf "    \"%s\": %s%s\n", curOrder[i], cur[curOrder[i]], i < nc-1 ? "," : ""
    printf "  },\n"
    printf "  \"baseline_ns_per_op\": {\n"
    for (i = 0; i < nb; i++)
      printf "    \"%s\": %s%s\n", order[i], base[order[i]], i < nb-1 ? "," : ""
    printf "  },\n"
    printf "  \"speedup\": {\n"
    sep = ""
    for (i = 0; i < nb; i++) {
      n = order[i]
      if (n in cur && cur[n] > 0) {
        printf "%s    \"%s\": %.2f", sep, n, base[n] / cur[n]
        sep = ",\n"
      }
    }
    printf "\n  }\n"
    printf "}\n"
  }' > "$out"
echo "wrote $out" >&2
