package repro

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tune/store"
)

// Spec declaratively describes one tuning session: which system/workload
// to tune, with which algorithm, under what budget and seed. Specs are
// plain JSON-serializable data — they round-trip through encoding/json —
// which is what lets remote clients submit sessions to the HTTP daemon
// and lets runs be reproduced exactly from their recorded spec. Any names
// added through RegisterTarget/RegisterTuner are accepted.
type Spec struct {
	// System and Workload name the target (see Systems and Workloads).
	System   string `json:"system"`
	Workload string `json:"workload"`
	// Tuner names the tuning approach (see Tuners).
	Tuner string `json:"tuner"`
	// Seed drives both the target's noise stream and the tuner's
	// randomness. A spec with the same seed always produces the same
	// trials, result, and event sequence, at any parallelism.
	Seed int64 `json:"seed"`
	// Budget caps the session's real runs and simulated time.
	Budget Budget `json:"budget"`
	// Target tweaks target construction (scale, fleet, tenancy).
	Target TargetOptions `json:"target,omitzero"`
	// Proxy configures the scaled replica for the "scaled-proxy" tuner:
	// the same system and workload rebuilt at the given scale.
	Proxy *ProxySpec `json:"proxy,omitempty"`
	// Parallel is the worker count for batch trial evaluation within the
	// session (0/1 = sequential; results identical at any value).
	Parallel int `json:"parallel,omitempty"`
	// Memo enables the config-keyed result memo cache for this session.
	Memo bool `json:"memo,omitempty"`
	// MemoCap bounds the memo cache to this many retained results with
	// cost-aware GDSF eviction; >0 implies Memo, 0 keeps the unbounded
	// map. Bounded sessions still evaluate deterministically at any
	// parallelism — only which repeats are served memoized can differ
	// from the unbounded cache.
	MemoCap int `json:"memo_cap,omitempty"`
	// Repository names a directory holding the durable tuning repository
	// (internal/tune/store layout). Start and StartOn load past sessions
	// from it — feeding repository-driven tuners and WarmStart — and
	// archive the finished session back into it. The HTTP daemon rejects
	// specs carrying this field: the daemon owns its own repository
	// directory and clients opt into it with WarmStart alone.
	Repository string `json:"repository,omitempty"`
	// WarmStart seeds the session's proposer with the best configurations
	// transferred from the mapped nearest past workload of the same system
	// in the repository (see tune.WarmConfigs). It requires an ask/tell
	// tuner; over an empty repository it degrades to a cold start.
	WarmStart bool `json:"warm_start,omitempty"`
	// Fidelity, when set, runs the session as a multi-fidelity schedule:
	// successive-halving/Hyperband brackets over the tuner's proposals,
	// screening configurations cheaply at low fidelity and promoting only
	// the survivors to full-cost runs (TrialPruned events mark the
	// early-stopped trials). It requires an ask/tell tuner and a target
	// with a fidelity-aware evaluation path.
	Fidelity *FidelitySpec `json:"fidelity,omitempty"`
	// Pareto opts the session into multi-objective latency-vs-cost tuning:
	// the tuner is fanned across scalarization weights (one differently
	// seeded sub-search per weight, see tune.MultiObjectiveTuner) and the
	// session tracks the Pareto front over full-fidelity trials, emitting a
	// ParetoIncumbent event whenever a trial joins it. Requires an ask/tell
	// tuner; incompatible with Fidelity.
	Pareto bool `json:"pareto,omitempty"`
	// Guardrail, when > 0, is the session's objective guardrail: the tuner
	// is wrapped in a surrogate safety screen (tune.GuardrailTuner) that
	// vetoes configurations predicted to exceed it, and every trial that
	// exceeds it anyway is counted and emitted as a GuardrailViolation
	// event. Requires an ask/tell tuner; incompatible with Fidelity.
	Guardrail float64 `json:"guardrail,omitempty"`
	// DriftDetect arms workload-drift detection (tune.DriftDetectTuner):
	// when the observed objective stream regresses persistently against the
	// incumbent, the session re-anchors — discards the stale incumbent,
	// emits DriftDetected, and restarts the proposer stack (including any
	// warm-start seeding) fresh against the shifted workload. Requires an
	// ask/tell tuner; incompatible with Fidelity. Pair with a drifting
	// workload (e.g. dbms "oltp-olap-shift" or "diurnal").
	DriftDetect bool `json:"drift_detect,omitempty"`
	// Surrogate selects the GP surrogate tier for the model-based tuners
	// (ituned, ottertune) and the trial-count thresholds at which a session
	// switches exact → sparse → RFF. nil means auto with default
	// thresholds; below the sparse threshold the exact tier runs the
	// historical code path, so sessions recorded without this field replay
	// byte-identically. Carried on the wire form so a recorded spec pins
	// its tier schedule.
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`
}

// FidelitySpec configures multi-fidelity tuning for a session (see
// tune.FidelitySpace and tune.Schedule).
type FidelitySpec struct {
	// Strategy selects the bracket schedule: "hyperband" (default) cycles
	// full Hyperband sweeps; "halving" repeats the single most exploratory
	// successive-halving bracket.
	Strategy string `json:"strategy,omitempty"`
	// Min is the lowest fidelity evaluated, as a fraction of the full
	// workload (default 1/9).
	Min float64 `json:"min,omitempty"`
	// Eta is the rung promotion ratio (default 3).
	Eta float64 `json:"eta,omitempty"`
}

// validate rejects out-of-range fidelity options with descriptive errors.
func (f *FidelitySpec) validate() error {
	switch f.Strategy {
	case "", tune.StrategyHyperband, tune.StrategyHalving:
	default:
		return fmt.Errorf("repro: unknown fidelity strategy %q (have %s, %s)",
			f.Strategy, tune.StrategyHyperband, tune.StrategyHalving)
	}
	if f.Min != 0 && !(f.Min >= tune.MinFidelity && f.Min <= 1) {
		return fmt.Errorf("repro: fidelity min must be within [%v, 1] (0 selects the default of 1/9), got %v", tune.MinFidelity, f.Min)
	}
	if f.Eta != 0 && !(f.Eta >= 1.5 && f.Eta <= 10) {
		return fmt.Errorf("repro: fidelity eta must be within [1.5, 10] (0 selects the default of 3), got %v", f.Eta)
	}
	return nil
}

// WarmSeeds is how many transferred configurations a warm-started session
// proposes before its tuner takes over.
const WarmSeeds = 3

// ProxySpec describes the scaled-down replica used by the scaled-proxy
// tuner: the spec's system and workload rebuilt at ScaleGB (and optionally
// Nodes), seeded independently of the full-scale target.
type ProxySpec struct {
	ScaleGB float64 `json:"scale_gb"`
	Nodes   int     `json:"nodes,omitempty"`
}

// Name returns the session's display name, "system/workload/tuner".
func (s Spec) Name() string {
	return s.System + "/" + s.Workload + "/" + s.Tuner
}

// Validate checks the spec against the registries and option ranges,
// returning a descriptive error for the first problem found.
func (s Spec) Validate() error {
	if s.System == "" || s.Workload == "" || s.Tuner == "" {
		return fmt.Errorf("repro: spec requires system, workload, and tuner (got %q, %q, %q)", s.System, s.Workload, s.Tuner)
	}
	wls := Workloads(s.System)
	if wls == nil {
		return fmt.Errorf("repro: unknown system %q (have %s)", s.System, strings.Join(Systems(), ", "))
	}
	// An empty declared list means the factory accepts open-ended workload
	// names; membership is then the factory's call at build time.
	if len(wls) > 0 {
		known := false
		for _, wl := range wls {
			if wl == s.Workload {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("repro: unknown %s workload %q (have %s)", s.System, s.Workload, strings.Join(wls, ", "))
		}
	}
	if _, _, ok := TunerInfo(s.Tuner); !ok {
		return fmt.Errorf("repro: unknown tuner %q (have %s)", s.Tuner, strings.Join(Tuners(), ", "))
	}
	// A session without a positive trial cap would complete instantly
	// with zero trials and the default config — a silent no-op a remote
	// client would mistake for success. Trials caps the run count even
	// under a sim-time budget (sim_time only tightens it).
	if s.Budget.Trials <= 0 {
		return fmt.Errorf("repro: spec requires budget.trials > 0, got %d", s.Budget.Trials)
	}
	if !(s.Budget.SimTime >= 0) {
		return fmt.Errorf("repro: budget sim_time must be ≥ 0, got %v", s.Budget.SimTime)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("repro: parallel must be ≥ 0, got %d", s.Parallel)
	}
	if s.MemoCap < 0 {
		return fmt.Errorf("repro: memo_cap must be ≥ 0 (0 = unbounded), got %d", s.MemoCap)
	}
	if err := s.Target.validate(); err != nil {
		return err
	}
	if s.Proxy != nil {
		if !(s.Proxy.ScaleGB > 0) {
			return fmt.Errorf("repro: proxy scale_gb must be > 0, got %v", s.Proxy.ScaleGB)
		}
		if s.Proxy.Nodes < 0 {
			return fmt.Errorf("repro: proxy nodes must be ≥ 0, got %d", s.Proxy.Nodes)
		}
	}
	if s.Fidelity != nil {
		if err := s.Fidelity.validate(); err != nil {
			return err
		}
	}
	if s.Guardrail < 0 {
		return fmt.Errorf("repro: guardrail must be ≥ 0 (0 = off), got %v", s.Guardrail)
	}
	// The scenario wrappers reshape the proposal stream per observation;
	// a fidelity schedule reshapes it per rung. Composing them would make
	// rung promotion decisions depend on scalarized or screened objectives
	// — silently different semantics — so the combination is rejected.
	if s.Fidelity != nil && (s.Pareto || s.Guardrail > 0 || s.DriftDetect) {
		return fmt.Errorf("repro: pareto, guardrail, and drift_detect are incompatible with a fidelity schedule")
	}
	if err := s.Surrogate.Validate(); err != nil {
		return err
	}
	return nil
}

// Job materializes the spec: it validates, builds the target and tuner,
// and returns the engine job describing the session. The Repository field
// is not resolved here — store lifecycle belongs to Start/StartOn (or to a
// caller passing a loaded corpus through JobWith).
func (s Spec) Job() (Job, error) { return s.JobWith(nil, nil) }

// JobWith materializes the spec against an explicit repository corpus: repo
// (which may be nil) supplies past sessions to repository-driven tuners and
// to WarmStart's transfer mapping, and archive (which may be nil) receives
// the finished session's record after a successful run. Callers own the
// corpus and the durability of archive — the daemon passes its store's
// snapshot and append; Start wires a store from Spec.Repository.
func (s Spec) JobWith(repo *Repository, archive func(SessionRecord)) (Job, error) {
	var warm tune.WarmSource
	if repo != nil {
		warm = repo
	}
	return s.JobWithWarm(repo, warm, archive)
}

// JobWithWarm is JobWith with the warm-start seed source decoupled from the
// materialized corpus: warm (which may be nil) answers WarmStart's
// nearest-workload transfer query, so a caller holding an indexed store can
// warm-start against a million-session repository without materializing it.
// repo still feeds repository-driven tuners; TunerNeedsRepository reports
// whether s.Tuner actually wants one.
func (s Spec) JobWithWarm(repo *Repository, warm tune.WarmSource, archive func(SessionRecord)) (Job, error) {
	if err := s.Validate(); err != nil {
		return Job{}, err
	}
	target, err := NewTarget(s.System, s.Workload, s.Seed, s.Target)
	if err != nil {
		return Job{}, err
	}
	topt := TunerOptions{Seed: s.Seed, Repo: repo, TargetName: target.Name(), Surrogate: s.Surrogate}
	if s.Proxy != nil {
		po := s.Target
		po.ScaleGB = s.Proxy.ScaleGB
		if s.Proxy.Nodes > 0 {
			po.Nodes = s.Proxy.Nodes
		}
		// The replica gets its own derived seed so its simulations draw a
		// noise stream independent of the full-scale target's.
		proxy, err := NewTarget(s.System, s.Workload, s.Seed+1, po)
		if err != nil {
			return Job{}, fmt.Errorf("repro: building proxy target: %w", err)
		}
		topt.Proxy = proxy
	}
	tuner, err := NewTuner(s.Tuner, topt)
	if err != nil {
		return Job{}, err
	}
	// Scenario wrapper order, inside out: base tuner → pareto fan-out →
	// guardrail screen → warm-start seeding → drift detection. The guardrail
	// screens everything the sweep proposes; warm seeds flow through the
	// screen as evidence; the drift detector sits outermost so a re-anchor
	// rebuilds the whole stack (screen, seeds, and all) fresh.
	if s.Pareto {
		bt, ok := tuner.(tune.BatchTuner)
		if !ok {
			return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot run multi-objective", s.Tuner)
		}
		subs := []tune.BatchTuner{bt}
		for i := 1; i < len(tune.DefaultParetoWeights); i++ {
			// Each scalarization weight gets its own differently seeded
			// sub-search so the design phases explore distinct points.
			sopt := topt
			sopt.Seed = s.Seed + int64(i)
			sub, err := NewTuner(s.Tuner, sopt)
			if err != nil {
				return Job{}, err
			}
			sbt, ok := sub.(tune.BatchTuner)
			if !ok {
				return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot run multi-objective", s.Tuner)
			}
			subs = append(subs, sbt)
		}
		mo, err := tune.MultiObjectiveTuner(subs, tune.DefaultParetoWeights)
		if err != nil {
			return Job{}, err
		}
		tuner = mo
	}
	if s.Guardrail > 0 {
		bt, ok := tuner.(tune.BatchTuner)
		if !ok {
			return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot run a guardrail screen", s.Tuner)
		}
		gt, err := tune.GuardrailTuner(bt, tune.GuardrailOptions{Limit: s.Guardrail})
		if err != nil {
			return Job{}, err
		}
		tuner = gt
	}
	if s.WarmStart {
		bt, ok := tuner.(tune.BatchTuner)
		if !ok {
			return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot warm-start", s.Tuner)
		}
		var features map[string]float64
		if d, ok := target.(tune.Describer); ok {
			features = d.WorkloadFeatures()
		}
		var seeds []tune.Config
		if warm != nil {
			seeds = warm.WarmConfigs(s.System, features, target.Space(), WarmSeeds)
		}
		tuner = tune.WarmStartTuner(bt, seeds)
	}
	if s.Fidelity != nil {
		bt, ok := tuner.(tune.BatchTuner)
		if !ok {
			return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot run a fidelity schedule", s.Tuner)
		}
		if _, ok := target.(tune.FidelityTarget); !ok {
			return Job{}, fmt.Errorf("repro: target %q has no fidelity-aware evaluation path", target.Name())
		}
		mf, err := tune.NewMultiFidelity(bt,
			tune.FidelitySpace{Min: s.Fidelity.Min, Eta: s.Fidelity.Eta}, s.Fidelity.Strategy, s.Seed)
		if err != nil {
			return Job{}, err
		}
		tuner = mf
	}
	if s.DriftDetect {
		bt, ok := tuner.(tune.BatchTuner)
		if !ok {
			return Job{}, fmt.Errorf("repro: tuner %q has no ask/tell form and cannot run drift detection", s.Tuner)
		}
		tuner = tune.DriftDetectTuner(bt, tune.DriftOptions{})
	}
	return Job{
		Name:      s.Name(),
		Tuner:     tuner,
		Target:    target,
		Budget:    s.Budget,
		Parallel:  s.Parallel,
		Memo:      s.Memo,
		MemoCap:   s.MemoCap,
		System:    s.System,
		Workload:  s.Workload,
		Archive:   archive,
		Pareto:    s.Pareto,
		Guardrail: s.Guardrail,
	}, nil
}

// defaultEngine serves package-level Start calls: one shared scheduler
// sized to the machine.
var defaultEngine = sync.OnceValue(func() *Engine {
	return engine.New(engine.Options{})
})

// Start materializes spec and submits it to the shared default engine,
// returning the live session handle. The handle's Events stream delivers
// TrialStarted/TrialDone/IncumbentImproved/SessionDone in trial order, and
// Pause/Resume/Stop control the run mid-flight. For a fixed spec and seed
// the final result equals what the blocking path (NewTarget + NewTuner +
// Tune) returns, and the event sequence is byte-identical at any Parallel.
// Cancelling ctx stops the run.
func Start(ctx context.Context, spec Spec) (*Run, error) {
	return StartOn(ctx, defaultEngine(), spec)
}

// StartOn is Start on a caller-owned engine — the daemon uses it to bound
// concurrent sessions with its own scheduler.
//
// When spec.Repository names a directory, the durable store there is loaded
// at submission (its sessions feed repository-driven tuners and
// warm-starting) and reopened briefly to archive a successful run's record
// before the run reports done — the store is never held across the run, so
// sequential sessions on one directory cannot collide on its process lock.
// On this convenience path an append failure surfaces on stderr only;
// callers that must observe archival errors should open the store
// themselves and use JobWith.
func StartOn(ctx context.Context, e *Engine, spec Spec) (*Run, error) {
	if spec.Repository == "" {
		job, err := spec.Job()
		if err != nil {
			return nil, err
		}
		return e.SubmitContext(ctx, job), nil
	}
	st, err := store.Open(spec.Repository)
	if err != nil {
		return nil, err
	}
	// Only repository-driven tuners need the corpus materialized; everyone
	// else (including warm start, which runs on the store's feature index)
	// gets by on the open store alone, keeping submission cheap at scale.
	var repo *Repository
	if TunerNeedsRepository(spec.Tuner) {
		if repo, err = st.Repository(); err != nil {
			st.Close()
			return nil, err
		}
	}
	job, err := spec.JobWithWarm(repo, st, func(rec SessionRecord) {
		st, err := store.Open(spec.Repository)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: archiving session: %v\n", err)
			return
		}
		defer st.Close()
		if _, err := st.Append(rec); err != nil {
			fmt.Fprintf(os.Stderr, "repro: archiving session: %v\n", err)
		}
	})
	// Warm-start seeds are drawn eagerly inside JobWithWarm, so the store is
	// no longer needed once the job exists.
	cerr := st.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return e.SubmitContext(ctx, job), nil
}
