// dbms-tuning compares one representative of every tuning category from the
// paper's Table 1 on the same DBMS workload under the same trial budget —
// the survey's central comparison, runnable at your desk.
//
// It also demonstrates the OtterTune transfer effect: the ML tuner runs
// twice, once cold and once with a repository of past sessions over other
// workloads, to show what workload mapping buys.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/tune"
)

func main() {
	ctx := context.Background()
	budget := tune.Budget{Trials: 30}
	seed := int64(7)

	fresh := func() repro.Target {
		t, err := repro.NewTarget("dbms", "mixed", seed)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	def := fresh().Run(fresh().Space().Default())
	fmt.Printf("workload dbms/mixed — default runs in %.0fs\n\n", def.Time)

	// Build a small repository from two other workloads for the ML tuner.
	repo := &repro.Repository{}
	for i, wl := range []string{"tpch", "oltp"} {
		past, err := repro.NewTarget("dbms", wl, seed+int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		it, _ := repro.NewTuner("ituned", repro.TunerOptions{Seed: seed + int64(i)})
		r, err := it.Tune(ctx, past, tune.Budget{Trials: 20})
		if err != nil {
			log.Fatal(err)
		}
		var features map[string]float64
		if d, ok := past.(interface{ WorkloadFeatures() map[string]float64 }); ok {
			features = d.WorkloadFeatures()
		}
		repo.AddResult("dbms", wl, features, r)
	}

	type entry struct {
		category string
		name     string
		opts     repro.TunerOptions
	}
	entries := []entry{
		{"rule-based", "rules", repro.TunerOptions{TargetName: "dbms/mixed"}},
		{"cost modeling", "stmm", repro.TunerOptions{}},
		{"simulation", "addm", repro.TunerOptions{}},
		{"experiment-driven", "ituned", repro.TunerOptions{Seed: seed}},
		{"machine learning (cold)", "ottertune", repro.TunerOptions{Seed: seed}},
		{"machine learning (repo)", "ottertune", repro.TunerOptions{Seed: seed, Repo: repo}},
		{"adaptive", "colt", repro.TunerOptions{Seed: seed}},
	}
	fmt.Printf("%-26s %-22s %8s %6s %12s\n", "category", "tuner", "best", "runs", "speedup")
	for _, e := range entries {
		tn, err := repro.NewTuner(e.name, e.opts)
		if err != nil {
			log.Fatal(err)
		}
		target := fresh()
		r, err := tn.Tune(ctx, target, budget)
		if err != nil {
			log.Fatal(err)
		}
		best := r.BestResult
		if len(r.Trials) == 0 {
			best = target.Run(r.Best)
		}
		fmt.Printf("%-26s %-22s %7.0fs %6d %11.2fx\n",
			e.category, tn.Name(), best.Time, len(r.Trials), def.Time/best.Time)
	}
}
