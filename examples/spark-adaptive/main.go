// spark-adaptive demonstrates the sixth category on a drifting stream: the
// batch volume grows over time, so any static configuration decays. Online
// controllers (Gounaris-style partition adaptation, COLT) retune the live
// knobs between micro-batches.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/spark"
	"repro/internal/tune"
	"repro/internal/tuners/adaptive"
	"repro/internal/tuners/rulebased"
	"repro/internal/workload"
)

func main() {
	const batches, interval = 30, 10.0
	seed := int64(5)
	job := workload.StreamingDrift(1536, batches, interval, 0.08)
	cl := cluster.Commodity(16)

	fresh := func() *spark.Spark { return spark.New(cl, job, seed) }

	report := func(label string, res tune.Result) {
		fmt.Printf("%-34s mean %5.1fs  p95 %5.1fs  misses %2.0f/%d\n",
			label,
			res.Metrics["mean_batch_latency_s"],
			res.Metrics["p95_batch_latency_s"],
			res.Metrics["deadline_misses"], batches)
	}

	fmt.Printf("streaming aggregation: %d batches, volume growing 8%%/batch, %gs deadline\n\n", batches, interval)

	target := fresh()
	report("static default", target.Run(target.Space().Default()))

	target = fresh()
	rules := rulebased.SparkRules().Apply(target.Space(), target.Specs(), target.WorkloadFeatures())
	report("static rules", target.Run(rules))

	target = fresh()
	report("adaptive partitions (from rules)",
		target.RunAdaptive(rules, adaptive.NewPartitionController()))

	target = fresh()
	colt := adaptive.NewCOLT(seed)
	ctl := colt.Controller(target.Space(), rand.New(rand.NewSource(seed)), batches)
	report("adaptive COLT (from rules)", target.RunAdaptive(rules, ctl))

	target = fresh()
	ctl2 := colt.Controller(target.Space(), rand.New(rand.NewSource(seed+1)), batches)
	res := target.RunAdaptive(target.Space().Default(), ctl2)
	report("adaptive COLT (from default)", res)
	if res.Metrics["deadline_misses"] > 0 {
		fmt.Println("\nnote: online tuning cannot resize executors mid-stream — the paper's")
		fmt.Println("      point that adaptive approaches cannot fix deployment-level mistakes.")
	}
}
