// cloud-cost demonstrates the paper's cloud open-challenge: joint cluster
// provisioning and parameter tuning under a deadline, priced per node-hour.
// For each candidate cluster size the job is tuned briefly, then the
// cheapest size meeting the deadline wins.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/sysmodel/cluster"
	"repro/internal/sysmodel/mapreduce"
	"repro/internal/tune"
	"repro/internal/tuners/experiment"
	"repro/internal/workload"
)

func main() {
	const deadline = 600.0 // seconds
	job := workload.TeraSort(30)
	seed := int64(3)
	ctx := context.Background()

	fmt.Printf("terasort 30 GB, deadline %.0fs, $0.40 per node-hour\n\n", deadline)
	fmt.Printf("%6s %10s %10s %12s %s\n", "nodes", "untuned", "tuned", "cost/run", "verdict")

	bestCost, bestNodes := -1.0, 0
	for _, n := range []int{4, 8, 16, 32} {
		cl := cluster.Commodity(n)
		target := mapreduce.New(cl, job, seed+int64(n))
		untuned := target.Run(target.Space().Default()).Time

		it := experiment.NewITuned(seed + int64(n))
		r, err := it.Tune(ctx, target, tune.Budget{Trials: 15})
		if err != nil {
			log.Fatal(err)
		}
		tuned := r.BestResult.Time
		cost := cl.DollarCost(tuned)
		verdict := "ok"
		if tuned > deadline {
			verdict = "misses deadline"
		} else if bestCost < 0 || cost < bestCost {
			bestCost, bestNodes = cost, n
		}
		fmt.Printf("%6d %9.0fs %9.0fs %11.3f$ %s\n", n, untuned, tuned, cost, verdict)
	}
	if bestNodes > 0 {
		fmt.Printf("\nprovision %d nodes: cheapest configuration meeting the deadline ($%.3f/run)\n",
			bestNodes, bestCost)
	}
	// The same decision can be made against a multi-tenant cluster:
	noisy := cluster.Commodity(bestNodes).MultiTenant(0.3, 0.2)
	target := mapreduce.New(noisy, job, seed+100)
	it := experiment.NewITuned(seed + 100)
	r, err := it.Tune(ctx, target, tune.Budget{Trials: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same size with 30%% tenant load: %.0fs/run ($%.3f) — interference priced in\n",
		r.BestResult.Time, noisy.DollarCost(r.BestResult.Time))
	_ = repro.Systems
}
