// Quickstart: tune a simulated DBMS running a TPC-H-like mix with iTuned in
// under thirty lines of code.
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/tune"
)

func main() {
	target, err := repro.NewTarget("dbms", "tpch", 42)
	if err != nil {
		log.Fatal(err)
	}
	before := target.Run(target.Space().Default())
	fmt.Printf("default configuration: %.0fs\n", before.Time)

	tuner, err := repro.NewTuner("ituned", repro.TunerOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	result, err := tuner.Tune(context.Background(), target, tune.Budget{Trials: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d experiments: %.0fs (%.1fx faster)\n",
		len(result.Trials), result.BestResult.Time, before.Time/result.BestResult.Time)
	fmt.Println("best configuration:", result.Best)
}
