// hadoop-tuning shows the cost-modeling trade the paper describes on a
// 50 GB TeraSort: the Starfish-style what-if model recommends a
// configuration after a single profiled run (near-zero tuning cost), while
// iTuned spends a budget of real runs to squeeze out the rest — and stock
// Hadoop defaults show why the paper calls misconfiguration "detrimental".
package main

import (
	"context"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/tune"
)

func main() {
	ctx := context.Background()
	seed := int64(11)

	fresh := func() repro.Target {
		t, err := repro.NewTarget("hadoop", "terasort", seed, repro.TargetOptions{ScaleGB: 50})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	stock := fresh().Run(fresh().Space().Default())
	fmt.Printf("hadoop/terasort, 50 GB on 16 nodes\n")
	fmt.Printf("  stock defaults (1 reducer, 100 MB sort buffer): %.0fs\n\n", stock.Time)

	for _, name := range []string{"rules", "starfish", "ituned"} {
		tn, err := repro.NewTuner(name, repro.TunerOptions{Seed: seed, TargetName: "hadoop/terasort"})
		if err != nil {
			log.Fatal(err)
		}
		target := fresh()
		r, err := tn.Tune(ctx, target, tune.Budget{Trials: 25})
		if err != nil {
			log.Fatal(err)
		}
		best := r.BestResult
		if len(r.Trials) == 0 {
			best = target.Run(r.Best)
		}
		fmt.Printf("%-22s best %6.0fs using %2d real runs (%.0fx over stock)\n",
			tn.Name(), best.Time, len(r.Trials), stock.Time/best.Time)
	}

	fmt.Println("\nkey knobs chosen by the what-if model:")
	tn, _ := repro.NewTuner("starfish", repro.TunerOptions{Seed: seed})
	target := fresh()
	r, err := tn.Tune(ctx, target, tune.Budget{Trials: 2})
	if err != nil {
		log.Fatal(err)
	}
	m := r.Best.Map()
	for _, k := range []string{
		"mapred_reduce_tasks", "io_sort_mb", "jvm_heap_mb",
		"map_output_compression", "split_size_mb", "map_slots_per_node",
	} {
		fmt.Printf("  %-26s %s\n", k, m[k])
	}
}
