package repro

// Repository-at-scale measurement harness (DESIGN.md §15): open cost,
// indexed NearestSession latency versus corpus size with the linear scan
// alongside, and the bounded memo cache's hit rate against the unbounded
// map. Building the million-session corpus takes minutes, so the harness is
// gated behind an environment variable and ordinary `go test` skips it:
//
//	REPRO_REPO_BENCH_OUT=BENCH_pr9.json go test -run '^TestRepositoryBenchReport$' -timeout 60m -v .
//
// REPRO_REPO_BENCH_SIZES overrides the corpus sizes (comma-separated;
// default 10000,100000,1000000). scripts/bench.sh drives this to produce
// BENCH_pr9.json; CI runs a 10k smoke against a throwaway output path.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/tune"
	"repro/internal/tune/store"
)

type repoSizeBench struct {
	Sessions      int     `json:"sessions"`
	BuildS        float64 `json:"build_s"`
	OpenMS        float64 `json:"open_ms"`
	IndexBuildMS  float64 `json:"index_build_ms"`
	IndexedP50us  float64 `json:"indexed_nearest_p50_us"`
	IndexedP99us  float64 `json:"indexed_nearest_p99_us"`
	IndexedCount  int     `json:"indexed_queries"`
	MaterializeMS float64 `json:"materialize_ms"`
	ScanP50us     float64 `json:"scan_nearest_p50_us"`
	ScanP99us     float64 `json:"scan_nearest_p99_us"`
	ScanCount     int     `json:"scan_queries"`
}

type memoCacheBench struct {
	Trials      int     `json:"trials"`
	Distinct    int     `json:"distinct_configs"`
	Cap         int     `json:"gdsf_cap"`
	MapHitRate  float64 `json:"map_hit_rate"`
	GDSFHitRate float64 `json:"gdsf_hit_rate"`
	Recovery    float64 `json:"gdsf_recovery"` // gdsf hits / unbounded hits
}

type repoBenchReport struct {
	CPUs       int             `json:"cpus"`
	Repository []repoSizeBench `json:"repository"`
	// Indexed p99 at the largest corpus over p99 at the smallest — the
	// flat-latency claim (acceptance: ≤ 3 between 10k and 1M).
	P99Ratio  float64        `json:"nearest_p99_ratio_largest_vs_smallest,omitempty"`
	MemoCache memoCacheBench `json:"memo_cache"`
}

// TestRepositoryBenchReport writes the PR 9 benchmark JSON. Skipped unless
// REPRO_REPO_BENCH_OUT names the output file.
func TestRepositoryBenchReport(t *testing.T) {
	out := os.Getenv("REPRO_REPO_BENCH_OUT")
	if out == "" {
		t.Skip("set REPRO_REPO_BENCH_OUT=<path> (and optionally REPRO_REPO_BENCH_SIZES) to run the repository bench")
	}
	sizes := []int{10000, 100000, 1000000}
	if env := os.Getenv("REPRO_REPO_BENCH_SIZES"); env != "" {
		sizes = sizes[:0]
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				t.Fatalf("REPRO_REPO_BENCH_SIZES: bad size %q", f)
			}
			sizes = append(sizes, n)
		}
	}
	report := repoBenchReport{CPUs: runtime.NumCPU()}
	for _, n := range sizes {
		report.Repository = append(report.Repository, benchRepoSize(t, n))
	}
	if k := len(report.Repository); k > 1 {
		first, last := report.Repository[0], report.Repository[k-1]
		if first.IndexedP99us > 0 {
			report.P99Ratio = last.IndexedP99us / first.IndexedP99us
		}
		t.Logf("indexed p99 ratio %d vs %d sessions: %.2fx (acceptance ≤ 3x)",
			last.Sessions, first.Sessions, report.P99Ratio)
		if last.OpenMS > 1000 {
			t.Logf("WARNING: open at %d sessions took %.0f ms (> 1 s)", last.Sessions, last.OpenMS)
		}
	}
	report.MemoCache = benchMemoCache(t)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// benchSession draws one archived session: three-dimensional feature
// vectors over a fixed range (so late queries never exceed the index's
// build-time scale), one trial, a sprinkling of a second system to keep the
// per-system index honest.
func benchSession(rng *rand.Rand, i int) tune.SessionRecord {
	system := "dbms"
	if i%10 == 9 {
		system = "spark"
	}
	return tune.SessionRecord{
		System:   system,
		Workload: "w" + strconv.Itoa(i%16),
		Features: map[string]float64{
			"rows":  rng.Float64() * 1000,
			"ratio": rng.Float64(),
			"skew":  rng.Float64() * 10,
		},
		ParamNames: []string{"a", "b"},
		Trials: []tune.TrialRecord{{
			Vector: []float64{rng.Float64(), rng.Float64()},
			Time:   1 + rng.Float64(),
		}},
	}
}

// benchQuery stays strictly inside the corpus feature range (0.9× the
// generator's), keeping every lookup on the index fast path — the regime a
// repository serving its own workload population lives in.
func benchQuery(rng *rand.Rand) map[string]float64 {
	return map[string]float64{
		"rows":  rng.Float64() * 900,
		"ratio": rng.Float64() * 0.9,
		"skew":  rng.Float64() * 9,
	}
}

func pctileUS(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(p*float64(len(s)-1))]) / float64(time.Microsecond)
}

func benchRepoSize(t *testing.T, n int) repoSizeBench {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	buildStart := time.Now()
	const chunk = 50000
	batch := make([]tune.SessionRecord, 0, chunk)
	for built := 0; built < n; {
		batch = batch[:0]
		for len(batch) < chunk && built < n {
			batch = append(batch, benchSession(rng, built))
			built++
		}
		if _, err := s.BulkAppend(batch); err != nil {
			t.Fatal(err)
		}
	}
	buildS := time.Since(buildStart).Seconds()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Open cost: indexes and tail only, never the payloads.
	openStart := time.Now()
	s, err = store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	openMS := float64(time.Since(openStart)) / float64(time.Millisecond)
	if s.Len() != n {
		t.Fatalf("built corpus has %d sessions, want %d", s.Len(), n)
	}

	queries := make([]map[string]float64, 256)
	for i := range queries {
		queries[i] = benchQuery(rng)
	}

	// The first lookup pays the lazy index build; report it separately.
	idxStart := time.Now()
	if _, ok := s.Nearest("dbms", queries[0]); !ok {
		t.Fatal("Nearest found nothing on a populated corpus")
	}
	indexBuildMS := float64(time.Since(idxStart)) / float64(time.Millisecond)

	// Warm untimed so the timed percentiles measure steady state, not the
	// first touches of freshly built tree pages.
	for _, q := range queries[:16] {
		s.Nearest("dbms", q)
	}
	lat := make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		qStart := time.Now()
		if _, ok := s.Nearest("dbms", q); !ok {
			t.Fatal("Nearest found nothing on a populated corpus")
		}
		lat = append(lat, time.Since(qStart))
	}

	// Linear-scan baseline: materialize every record, then run the retained
	// oracle over the slice — what every lookup cost before the index.
	matStart := time.Now()
	all, err := s.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	var recs []tune.SessionRecord
	for _, st := range all {
		if st.Record.System == "dbms" {
			recs = append(recs, st.Record)
		}
	}
	matMS := float64(time.Since(matStart)) / float64(time.Millisecond)
	scanN := 100
	if n > 200000 {
		scanN = 10
	} else if n > 20000 {
		scanN = 30
	}
	scanLat := make([]time.Duration, 0, scanN)
	for _, q := range queries[:scanN] {
		qStart := time.Now()
		if tune.NearestSession(recs, q) < 0 {
			t.Fatal("NearestSession found nothing on a populated corpus")
		}
		scanLat = append(scanLat, time.Since(qStart))
	}

	r := repoSizeBench{
		Sessions:      n,
		BuildS:        buildS,
		OpenMS:        openMS,
		IndexBuildMS:  indexBuildMS,
		IndexedP50us:  pctileUS(lat, 0.50),
		IndexedP99us:  pctileUS(lat, 0.99),
		IndexedCount:  len(lat),
		MaterializeMS: matMS,
		ScanP50us:     pctileUS(scanLat, 0.50),
		ScanP99us:     pctileUS(scanLat, 0.99),
		ScanCount:     len(scanLat),
	}
	t.Logf("n=%d: open %.1f ms, index build %.1f ms, indexed p50/p99 %.1f/%.1f µs, scan p50/p99 %.1f/%.1f µs",
		n, r.OpenMS, r.IndexBuildMS, r.IndexedP50us, r.IndexedP99us, r.ScanP50us, r.ScanP99us)
	return r
}

// memoBenchTarget counts real evaluations so cache hits are observable as
// trials minus calls.
type memoBenchTarget struct {
	space *tune.Space
	calls atomic.Int64
}

func (m *memoBenchTarget) Name() string       { return "memo-bench" }
func (m *memoBenchTarget) Space() *tune.Space { return m.space }
func (m *memoBenchTarget) Run(cfg tune.Config) tune.Result {
	m.calls.Add(1)
	return tune.Result{Time: 1 + cfg.Vector()[0]}
}

// zipfProposer replays a skewed stream over a fixed set of configurations —
// the memo-pressure shape of repeated trials inside one tuning session.
type zipfProposer struct {
	space    *tune.Space
	zipf     *rand.Zipf
	distinct int
}

func (p *zipfProposer) Propose(int) []tune.Config {
	k := int(p.zipf.Uint64())
	return []tune.Config{p.space.FromVector([]float64{float64(k) / float64(p.distinct)})}
}
func (p *zipfProposer) Observe(tune.Trial) {}

// benchMemoCache compares the unbounded memo map against the GDSF cache at
// a tenth of the key space on the same skewed proposal stream.
func benchMemoCache(t *testing.T) memoCacheBench {
	t.Helper()
	const trials, distinct, gdsfCap = 4000, 200, 20
	run := func(o engine.Options) float64 {
		tgt := &memoBenchTarget{space: tune.NewSpace(tune.Float("x", 0, 1, 0.5))}
		zrng := rand.New(rand.NewSource(17))
		p := &zipfProposer{space: tgt.space, distinct: distinct, zipf: rand.NewZipf(zrng, 1.3, 1, distinct-1)}
		if _, err := engine.New(o).Drive(context.Background(), "memo-bench", tgt, tune.Budget{Trials: trials}, p); err != nil {
			t.Fatal(err)
		}
		return float64(trials-int(tgt.calls.Load())) / float64(trials)
	}
	mapRate := run(engine.Options{Workers: 1, Cache: true})
	gdsfRate := run(engine.Options{Workers: 1, CacheCap: gdsfCap})
	b := memoCacheBench{
		Trials:      trials,
		Distinct:    distinct,
		Cap:         gdsfCap,
		MapHitRate:  mapRate,
		GDSFHitRate: gdsfRate,
	}
	if mapRate > 0 {
		b.Recovery = gdsfRate / mapRate
	}
	t.Logf("memo: unbounded map hit rate %.3f, gdsf@%d hit rate %.3f (recovery %.2f)",
		mapRate, gdsfCap, gdsfRate, b.Recovery)
	return b
}
